// Package hyperloglog implements HyperLogLog (Flajolet, Fusy, Gandouet &
// Meunier 2007), the strongest baseline in the S-bitmap paper's
// evaluation.
//
// Like LogLog it keeps m = 2^k max-rank registers, but estimates through
// the harmonic mean,
//
//	n̂ = α_m · m² / Σ_j 2^(−M_j),
//
// which trims the influence of outlier registers and improves the
// asymptotic relative error to ≈ 1.04/√m. The small-range correction falls
// back to linear counting over empty registers when n̂ ≤ 2.5m, exactly as
// in the original paper (we omit the 32-bit hash-collision correction
// because ranks here derive from 64-bit hashes, which do not saturate at
// the paper's cardinality scales).
//
// The memory model used in the S-bitmap paper's Section 6.2 comparison —
// m_HLL = 1.042·ε⁻² registers of α bits, α = k+1 for 2^(2^k) ≤ N <
// 2^(2^(k+1)) — is exposed as MemoryBitsFor so the Table 2 / Figure 3
// reproductions can quote the same numbers.
package hyperloglog

import (
	"fmt"
	"math"
	"math/bits"
	"unsafe"

	"repro/internal/uhash"
)

// RegisterBits is the register width used for memory accounting when
// N < 2^32, matching the paper's α = 5. (Registers are stored in bytes at
// runtime; accounting follows the information-theoretic width, as the
// paper's does.)
const RegisterBits = 5

const maxRank = 1<<RegisterBits - 1

// Sketch is a HyperLogLog counter. Not safe for concurrent use.
type Sketch struct {
	reg   []uint8
	kBits uint
	alpha float64
	h     uhash.Hasher
	scr   uhash.Scratch // reusable batch hash buffers (not serialized)
}

// New returns a HyperLogLog sketch with m = 2^kBits registers, hashing
// with the default Mixer seeded by seed. It panics if kBits is outside
// [4, 24] (the α_m constants below follow the original paper and start at
// m = 16).
func New(kBits uint, seed uint64) *Sketch {
	return NewWithHasher(kBits, uhash.NewMixer(seed))
}

// NewWithHasher returns a HyperLogLog sketch with an explicit hasher.
func NewWithHasher(kBits uint, h uhash.Hasher) *Sketch {
	if kBits < 4 || kBits > 24 {
		panic(fmt.Sprintf("hyperloglog: kBits = %d outside [4, 24]", kBits))
	}
	m := 1 << kBits
	return &Sketch{reg: make([]uint8, m), kBits: kBits, alpha: alpha(m), h: h}
}

// KBitsForBudget returns the largest register-count exponent k such that
// 2^k 5-bit registers fit in mbits bits.
func KBitsForBudget(mbits int) uint {
	k := uint(4)
	for (1<<(k+1))*RegisterBits <= mbits && k+1 <= 24 {
		k++
	}
	return k
}

// alpha returns the HyperLogLog bias-correction constant from the original
// paper: tabulated for small m, 0.7213/(1+1.079/m) for m ≥ 128.
func alpha(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(m))
	}
}

// MemoryBitsFor returns the memory (in bits) that the S-bitmap paper's
// Section 6.2 accounting assigns HyperLogLog for target RRMSE eps and
// cardinality bound n: (1.04/ε)² registers — RRMSE = 1.04/√m solved for
// m — of width α, where α = 4 for 2^8 ≤ N < 2^16, α = 5 for
// 2^16 ≤ N < 2^32, and so on. (The paper's prose writes the register count
// as "1.042·ε⁻²", but its Table 2 entries — e.g. 432.6 hundred bits at
// N = 10³, ε = 1% — are exactly 1.04²·ε⁻²·α; we follow the table.)
func MemoryBitsFor(n float64, eps float64) (int, error) {
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("hyperloglog: eps %g outside (0, 1)", eps)
	}
	if n < 2 {
		n = 2
	}
	registers := 1.04 * 1.04 / (eps * eps)
	width := registerWidthFor(n)
	return int(math.Ceil(registers * float64(width))), nil
}

// registerWidthFor returns α = k+1 with 2^(2^k) ≤ n < 2^(2^(k+1)),
// clamped below at 3 bits (n < 2^8).
func registerWidthFor(n float64) int {
	log2log2 := math.Log2(math.Log2(n))
	k := int(math.Floor(log2log2))
	if k < 2 {
		k = 2
	}
	return k + 1
}

// Add offers an item to the sketch; it reports whether a register grew.
func (s *Sketch) Add(item []byte) bool {
	hi, lo := s.h.Sum128(item)
	return s.insert(hi, lo)
}

// AddUint64 offers a 64-bit item.
func (s *Sketch) AddUint64(item uint64) bool {
	hi, lo := s.h.Sum128Uint64(item)
	return s.insert(hi, lo)
}

// AddString offers a string item; it hashes identically to Add of the
// string's bytes but avoids the []byte conversion.
func (s *Sketch) AddString(item string) bool {
	hi, lo := s.h.Sum128String(item)
	return s.insert(hi, lo)
}

func (s *Sketch) insert(bucketWord, geoWord uint64) bool {
	j := bucketWord >> (64 - s.kBits)
	rank := bits.LeadingZeros64(geoWord) + 1
	if rank > maxRank {
		rank = maxRank
	}
	if uint8(rank) <= s.reg[j] {
		return false
	}
	s.reg[j] = uint8(rank)
	return true
}

// AddBatch64 offers a slice of 64-bit items and returns how many grew a
// register; state-equivalent to AddUint64 on each item in order, with
// chunked hashing and the register array in a local.
func (s *Sketch) AddBatch64(items []uint64) int {
	return uhash.Batch64(s.h, &s.scr, items, s.insertBatch)
}

// AddBatchString is AddBatch64 for string items.
func (s *Sketch) AddBatchString(items []string) int {
	return uhash.BatchString(s.h, &s.scr, items, s.insertBatch)
}

// insertBatch replays insert over a chunk of hashed items; the bucket
// index is a kBits-bit prefix, in range of the register array by
// construction.
func (s *Sketch) insertBatch(hi, lo []uint64) int {
	lo = lo[:len(hi)] // one bounds proof for the whole chunk
	reg := s.reg
	shift := 64 - s.kBits
	changed := 0
	for i, h := range hi {
		j := h >> shift
		rank := bits.LeadingZeros64(lo[i]) + 1
		if rank > maxRank {
			rank = maxRank
		}
		if uint8(rank) > reg[j] {
			reg[j] = uint8(rank)
			changed++
		}
	}
	return changed
}

// M returns the number of registers.
func (s *Sketch) M() int { return len(s.reg) }

// Estimate returns the bias-corrected HyperLogLog estimate with the
// original paper's small-range (linear counting) correction.
func (s *Sketch) Estimate() float64 {
	m := float64(len(s.reg))
	var invSum float64
	zeros := 0
	for _, r := range s.reg {
		invSum += math.Exp2(-float64(r))
		if r == 0 {
			zeros++
		}
	}
	e := s.alpha * m * m / invSum
	if e <= 2.5*m && zeros > 0 {
		return m * math.Log(m/float64(zeros))
	}
	return e
}

// StdErrTheory returns the asymptotic relative standard error 1.04/√m.
func (s *Sketch) StdErrTheory() float64 { return 1.04 / math.Sqrt(float64(len(s.reg))) }

// Merge takes the register-wise maximum with another sketch; the result
// summarizes the union of the two streams. Register counts must match.
func (s *Sketch) Merge(o *Sketch) error {
	if len(s.reg) != len(o.reg) {
		return fmt.Errorf("hyperloglog: merge of m=%d with m=%d", len(s.reg), len(o.reg))
	}
	for j := range s.reg {
		if o.reg[j] > s.reg[j] {
			s.reg[j] = o.reg[j]
		}
	}
	return nil
}

// SizeBits returns the summary memory footprint in bits (5 per register).
func (s *Sketch) SizeBits() int { return len(s.reg) * RegisterBits }

// Footprint returns the sketch's resident process memory in bytes: the
// struct, the register array at capacity, and the batch-hash scratch.
func (s *Sketch) Footprint() int {
	return int(unsafe.Sizeof(*s)) + cap(s.reg) + s.scr.Footprint()
}

// MarshalBinary serializes the register array (one byte per register,
// preceded by the register-count exponent). The hash function is not
// serialized; pass the original hasher to Unmarshal to continue counting.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 1+len(s.reg))
	buf = append(buf, byte(s.kBits))
	buf = append(buf, s.reg...)
	return buf, nil
}

// UnmarshalBinary reconstructs the sketch in place from MarshalBinary
// output. A nil hasher field is replaced by the default Mixer with seed 1.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < 1 {
		return fmt.Errorf("hyperloglog: truncated serialization")
	}
	kBits := uint(data[0])
	if kBits < 4 || kBits > 24 {
		return fmt.Errorf("hyperloglog: serialized kBits = %d outside [4, 24]", kBits)
	}
	m := 1 << kBits
	if len(data) != 1+m {
		return fmt.Errorf("hyperloglog: register body %d bytes, want %d", len(data)-1, m)
	}
	for _, r := range data[1:] {
		if r > maxRank {
			return fmt.Errorf("hyperloglog: serialized rank %d exceeds register width", r)
		}
	}
	s.reg = append([]uint8(nil), data[1:]...)
	s.kBits = kBits
	s.alpha = alpha(m)
	if s.h == nil {
		s.h = uhash.NewMixer(1)
	}
	return nil
}

// Unmarshal reconstructs a sketch from MarshalBinary output, hashing with h
// (nil selects the default Mixer with seed 1).
func Unmarshal(data []byte, h uhash.Hasher) (*Sketch, error) {
	s := &Sketch{h: h}
	if err := s.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset clears the sketch for reuse.
func (s *Sketch) Reset() {
	for j := range s.reg {
		s.reg[j] = 0
	}
}
