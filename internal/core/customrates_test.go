package core

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestNewConfigRatesMatchesLemma1(t *testing.T) {
	// A custom schedule's estimator table must be the Lemma 1 cumulative
	// sum; check against the Theorem 2 closed form by feeding the optimal
	// rates back in.
	opt, err := NewConfigMN(400, 1e4)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, opt.M())
	for k := 1; k <= opt.M(); k++ {
		p[k-1] = opt.P(k)
	}
	custom, err := NewConfigRates(opt.M(), p)
	if err != nil {
		t.Fatal(err)
	}
	// Up to the truncation point the tables must agree exactly.
	for _, b := range []int{1, 10, 100, opt.KMax()} {
		if rel := math.Abs(custom.T(b)-opt.T(b)) / opt.T(b); rel > 1e-9 {
			t.Errorf("t_%d: custom %g vs optimal %g", b, custom.T(b), opt.T(b))
		}
	}
	// Beyond it the custom config keeps growing (no truncation).
	if custom.T(custom.M()) <= opt.T(opt.M()) {
		t.Error("untruncated table should exceed the truncated one at b=m")
	}
	if custom.KMax() != custom.M() {
		t.Errorf("custom KMax = %d, want m", custom.KMax())
	}
}

func TestNewConfigRatesValidation(t *testing.T) {
	if _, err := NewConfigRates(1, []float64{1}); err == nil {
		t.Error("m=1 accepted")
	}
	if _, err := NewConfigRates(3, []float64{0.5, 0.4}); err == nil {
		t.Error("wrong-length schedule accepted")
	}
	if _, err := NewConfigRates(2, []float64{0.5, 0.6}); err == nil {
		t.Error("non-monotone schedule accepted")
	}
	if _, err := NewConfigRates(2, []float64{0.5, 0}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewConfigRates(2, []float64{1.5, 0.5}); err == nil {
		t.Error("rate > 1 accepted")
	}
}

func TestGeometricRatesReach(t *testing.T) {
	const m = 300
	const n = 5e4
	p, err := GeometricRates(m, n)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := NewConfigRates(m, p)
	if err != nil {
		t.Fatal(err)
	}
	// The schedule is built so t_m = n.
	if rel := math.Abs(cfg.T(m)-n) / n; rel > 1e-6 {
		t.Errorf("geometric reach t_m = %g, want %g", cfg.T(m), n)
	}
	// Monotone decreasing by construction.
	for k := 1; k < m; k++ {
		if p[k] > p[k-1] {
			t.Fatalf("geometric schedule not monotone at %d", k)
		}
	}
	if _, err := GeometricRates(1, 100); err == nil {
		t.Error("m=1 accepted")
	}
	// Huge n is reachable (tiny rho): must dimension without error.
	if _, err := GeometricRates(100, 1e15); err != nil {
		t.Errorf("large n should be reachable: %v", err)
	}
	if _, err := GeometricRates(1000, 1); err == nil {
		t.Error("n below minimum reach accepted")
	}
}

func TestGeometricRatesNotScaleInvariant(t *testing.T) {
	// The substantive ablation claim, verified statistically: under the
	// naive geometric schedule the RRMSE drifts across scales by a factor
	// ≥ 2, whereas the Theorem 2 schedule holds flat (other tests).
	const m = 300
	const n = 5e4
	p, err := GeometricRates(m, n)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := NewConfigRates(m, p)
	if err != nil {
		t.Fatal(err)
	}
	rrmse := func(card int) float64 {
		var sum stats.ErrorSummary
		for rep := 0; rep < 150; rep++ {
			s := NewSketch(cfg, uint64(rep)+9)
			base := uint64(rep) << 34
			for i := 0; i < card; i++ {
				s.AddUint64(base + uint64(i))
			}
			sum.AddEstimate(s.Estimate(), float64(card))
		}
		return sum.RRMSE()
	}
	small, large := rrmse(200), rrmse(30000)
	lo, hi := small, large
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi/lo < 1.8 {
		t.Errorf("geometric schedule RRMSE %0.4f vs %0.4f — expected ≥1.8x drift across scales", small, large)
	}
}

func TestUncorrectedRates(t *testing.T) {
	p, err := UncorrectedRates(200, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 200 {
		t.Fatalf("schedule length %d", len(p))
	}
	for k := 1; k < len(p); k++ {
		if p[k] > p[k-1] {
			t.Fatalf("uncorrected schedule not monotone at %d", k)
		}
	}
	// Must be usable as a config.
	if _, err := NewConfigRates(200, p); err != nil {
		t.Fatal(err)
	}
	if _, err := UncorrectedRates(1, 100); err == nil {
		t.Error("m=1 accepted")
	}
	if _, err := UncorrectedRates(100, 1); err == nil {
		t.Error("C=1 accepted")
	}
}

func TestChainWorksOnCustomRates(t *testing.T) {
	// The exact Markov machinery must apply to custom schedules too: the
	// estimator built from Lemma 1 is unbiased for ANY monotone schedule
	// (the martingale argument never uses the dimensioning rule).
	p, err := GeometricRates(150, 5000)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := NewConfigRates(150, p)
	if err != nil {
		t.Fatal(err)
	}
	chain := NewChain(cfg)
	for i := 0; i < 1000; i++ {
		chain.Step()
	}
	mean, _ := chain.EstimateMoments()
	if rel := math.Abs(mean-1000) / 1000; rel > 1e-6 {
		t.Errorf("custom-schedule estimator biased: E n̂ = %.4f at n=1000", mean)
	}
}
