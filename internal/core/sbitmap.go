package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"unsafe"

	"repro/internal/bitvec"
	"repro/internal/uhash"
)

// Sketch is an S-bitmap: a bitmap of m bits filled by the adaptive sampling
// process of Algorithm 2. One 128-bit hash is computed per item; the high
// word selects the bucket (the paper's first c bits) and the low word is the
// sampling fraction u (the paper's last d bits). An item that maps to an
// occupied bucket is skipped outright, so processing duplicates costs one
// hash and one bit probe.
//
// Sketch is not safe for concurrent use; wrap it in a mutex or shard by
// stream if needed (the experiments shard).
type Sketch struct {
	cfg *Config
	h   uhash.Hasher
	v   *bitvec.Vector
	l   int // number of ones, the paper's L

	// cur is the 64-bit scaled acceptance threshold for the CURRENT fill
	// level: an item is sampled at level L iff u < cur, where u is the
	// 64-bit sampling word. With dBits < 64, the threshold is quantized to
	// the top dBits bits, reproducing the paper's finite-resolution
	// "u·2^−d < p" test (d = 30 in the paper's implementation sketch).
	//
	// Because L only ever moves forward one step at a time, this single
	// register replaces the per-level threshold table: cur is advanced via
	// the closed-form schedule on each 0→1 transition — at most m
	// recomputations (one exp each) over the sketch's whole lifetime, so
	// the auxiliary state stays O(1) and the hot path compares against a
	// register instead of loading from an O(m) table.
	cur   uint64
	dBits uint

	scr uhash.Scratch // reusable batch hash buffers (not serialized)
}

// Option configures optional Sketch behavior.
type Option func(*sketchOptions)

type sketchOptions struct {
	hasher uhash.Hasher
	dBits  uint
}

// WithHasher selects the hash family (default: uhash.NewMixer(seed) chosen
// by the constructor's seed argument).
func WithHasher(h uhash.Hasher) Option {
	return func(o *sketchOptions) { o.hasher = h }
}

// WithResolution limits the sampling fraction to d bits, 1 ≤ d ≤ 64,
// matching the paper's Algorithm 2 where u is a d-bit integer. The default
// (64) is effectively continuous; d = 30 reproduces the paper's suggested
// implementation. Used by the ablation_d experiment.
func WithResolution(d uint) Option {
	return func(o *sketchOptions) { o.dBits = d }
}

// NewSketch returns an empty S-bitmap under cfg. The seed determines the
// hash function; replicated experiments use distinct seeds.
func NewSketch(cfg *Config, seed uint64, opts ...Option) *Sketch {
	o := sketchOptions{dBits: 64}
	for _, opt := range opts {
		opt(&o)
	}
	if o.hasher == nil {
		o.hasher = uhash.NewMixer(seed)
	}
	if o.dBits < 1 || o.dBits > 64 {
		panic(fmt.Sprintf("core: sampling resolution d = %d outside [1, 64]", o.dBits))
	}
	s := &Sketch{
		cfg:   cfg,
		h:     o.hasher,
		v:     bitvec.New(cfg.m),
		dBits: o.dBits,
	}
	s.cur = s.thresholdAt(0)
	return s
}

// thresholdAt returns the acceptance threshold in force at fill level l
// (i.e. for rate p_{l+1}), evaluating the schedule on demand. A full
// bitmap accepts nothing.
func (s *Sketch) thresholdAt(l int) uint64 {
	if l >= s.cfg.m {
		return 0
	}
	return rateThreshold(s.cfg.sched.rate(l+1), s.dBits)
}

// rateThreshold converts a sampling rate p ∈ (0, 1] to the 64-bit threshold
// implementing "u·2^−d < p" on the top d bits of the sampling word: the
// number of accepted d-bit values is ⌈p·2^d⌉ (strict inequality), shifted
// back to the 64-bit domain. The scaling uses Ldexp — a pure exponent
// shift, exact for every d ∈ [1, 64] — rather than a float power-of-two
// multiply, so the d-bit truncation never inherits rounding from the
// scaling step itself.
func rateThreshold(p float64, d uint) uint64 {
	if p >= 1 {
		return math.MaxUint64
	}
	if p <= 0 {
		return 0
	}
	scaled := math.Ceil(math.Ldexp(p, int(d)))
	if scaled >= math.Ldexp(1, int(d)) {
		return math.MaxUint64
	}
	t := uint64(scaled)
	if d < 64 {
		return t << (64 - d)
	}
	return t
}

// Config returns the sketch's immutable configuration.
func (s *Sketch) Config() *Config { return s.cfg }

// Add offers an item to the sketch and reports whether the sketch state
// changed (a bucket transitioned 0→1).
func (s *Sketch) Add(item []byte) bool {
	hi, lo := s.h.Sum128(item)
	return s.insert(hi, lo)
}

// AddUint64 offers a 64-bit item; it is equivalent to Add of the item's
// 8-byte little-endian encoding but allocation-free.
func (s *Sketch) AddUint64(item uint64) bool {
	hi, lo := s.h.Sum128Uint64(item)
	return s.insert(hi, lo)
}

// AddString offers a string item; it hashes identically to Add of the
// string's bytes but avoids the []byte conversion.
func (s *Sketch) AddString(item string) bool {
	hi, lo := s.h.Sum128String(item)
	return s.insert(hi, lo)
}

// AddBatch64 offers a slice of 64-bit items and returns how many changed
// the sketch state. It is state-equivalent to calling AddUint64 on each
// item in order, but hashes in chunks (one dispatch per uhash.BatchSize
// items instead of one per item) and runs the insert loop with the fill
// level and threshold table in locals.
func (s *Sketch) AddBatch64(items []uint64) int {
	return uhash.Batch64(s.h, &s.scr, items, s.insertBatch)
}

// AddBatchString is AddBatch64 for string items; each hashes identically
// to AddString of the same item.
func (s *Sketch) AddBatchString(items []string) int {
	return uhash.BatchString(s.h, &s.scr, items, s.insertBatch)
}

// AddBatch64Scratch is AddBatch64 hashing through caller-owned scratch
// instead of the sketch's own lazily allocated buffers. A keyed store
// holding millions of tiny sketches shares one scratch per lock stripe,
// so the ~4 KiB of batch buffers are paid per stripe, not per key. The
// sketch state after the call is bit-identical to AddBatch64's.
func (s *Sketch) AddBatch64Scratch(scr *uhash.Scratch, items []uint64) int {
	return uhash.Batch64(s.h, scr, items, s.insertBatch)
}

// AddBatchStringScratch is AddBatch64Scratch for string items.
func (s *Sketch) AddBatchStringScratch(scr *uhash.Scratch, items []string) int {
	return uhash.BatchString(s.h, scr, items, s.insertBatch)
}

// insertBatch replays insert over a chunk of hashed items. Bucket indexes
// come from a multiply-shift onto [0, m) = [0, Len()), which proves the
// unchecked bit probes in range for the whole chunk. The acceptance
// threshold lives in a local for the whole chunk, recomputed only on 0→1
// transitions (amortized to noise: at most m recomputations ever).
func (s *Sketch) insertBatch(hi, lo []uint64) int {
	lo = lo[:len(hi)] // one bounds proof for the whole chunk
	m := s.cfg.m
	mm := uint64(m)
	cur := s.cur
	v := s.v
	l := s.l
	changed := 0
	for i, h := range hi {
		j, _ := bits.Mul64(h, mm)
		if v.GetUnchecked(int(j)) {
			continue
		}
		if lo[i] >= cur {
			continue
		}
		v.SetUnchecked(int(j))
		l++
		changed++
		cur = s.thresholdAt(l)
	}
	s.l = l
	s.cur = cur
	return changed
}

// insert implements lines 3–9 of Algorithm 2 given the two hash words.
func (s *Sketch) insert(bucketWord, sampleWord uint64) bool {
	// Multiply-shift bucket selection: j = ⌊bucketWord · m / 2^64⌋ is
	// uniform on [0, m) and works for any m, not only powers of two.
	j, _ := bits.Mul64(bucketWord, uint64(s.cfg.m))
	if s.v.Get(int(j)) {
		return false // case 1 of Figure 1: occupied bucket, skip
	}
	if sampleWord >= s.cur {
		// Not sampled at rate p_{L+1}. A full bitmap (L = m, which cannot
		// happen before kMax in practice) parks the threshold at 0, so this
		// branch also rejects everything once no bucket is left.
		return false
	}
	s.v.Set(int(j))
	s.l++
	s.cur = s.thresholdAt(s.l)
	return true
}

// L returns the current number of 1-bits (the paper's L).
func (s *Sketch) L() int { return s.l }

// B returns the truncated output B = min(L, k*) of Equation (8).
func (s *Sketch) B() int {
	if s.l > s.cfg.kMax {
		return s.cfg.kMax
	}
	return s.l
}

// Estimate returns the cardinality estimate n̂ = t_B (Equation 2),
// evaluated in closed form: t_B = C/2·(r^{−B} − 1).
func (s *Sketch) Estimate() float64 { return s.cfg.sched.estimate(s.B()) }

// Saturated reports whether the sketch has reached its truncation point;
// estimates at or beyond N are pinned to t_{k*} ≈ N.
func (s *Sketch) Saturated() bool { return s.l >= s.cfg.kMax }

// FillRatio returns L/m, the fraction of buckets set.
func (s *Sketch) FillRatio() float64 { return float64(s.l) / float64(s.cfg.m) }

// SizeBits returns the summary-statistic memory footprint in bits, the
// quantity compared across algorithms in Section 6.2 (hash seeds excluded,
// as in the paper).
func (s *Sketch) SizeBits() int { return s.cfg.m }

// Footprint returns the sketch's resident process memory in bytes: the
// struct itself, its share of the Config (including any schedule tables),
// the bitmap words, and the lazily allocated batch-hash scratch. For
// Theorem-2 configs this is m/8 plus a small constant — the paper's
// Table 2 accounting finally holds of the process, not just the bitmap.
// (A Config may be shared across sketches, in which case its bytes are
// over-counted; they are a small constant on the closed-form path.)
func (s *Sketch) Footprint() int {
	return int(unsafe.Sizeof(*s)) + s.cfg.AuxBytes() + s.v.Footprint() + s.scr.Footprint()
}

// Reset clears the sketch for reuse under the same configuration and hash.
func (s *Sketch) Reset() {
	s.v.Reset()
	s.l = 0
	s.cur = s.thresholdAt(0)
}

// sketchMagic guards serialized sketches against format drift.
const sketchMagic = uint32(0x5b17ab01)

// LegacySketchMagic is the magic word of the original bare serialization
// format, exported so the root package's universal Unmarshal can keep
// accepting pre-envelope S-bitmap snapshots.
const LegacySketchMagic = sketchMagic

// MarshalBinary serializes the sketch state together with the (m, N, C)
// triple so a receiver can rebuild the estimator tables. The hash seed is
// NOT serialized; the caller must construct the receiving sketch with the
// same hasher to continue updating (estimation alone needs no hasher).
func (s *Sketch) MarshalBinary() ([]byte, error) {
	vb, err := s.v.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 45+len(vb))
	buf = binary.LittleEndian.AppendUint32(buf, sketchMagic)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.cfg.m))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.cfg.n))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.cfg.c))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.l))
	buf = append(buf, byte(s.dBits))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(vb)))
	buf = append(buf, vb...)
	return buf, nil
}

// UnmarshalSketch reconstructs a sketch from MarshalBinary output. The
// returned sketch can Estimate immediately; to continue adding items, pass
// the same hasher used by the original via opts.
func UnmarshalSketch(data []byte, opts ...Option) (*Sketch, error) {
	if len(data) < 45 {
		return nil, errors.New("core: truncated sketch header")
	}
	if binary.LittleEndian.Uint32(data) != sketchMagic {
		return nil, errors.New("core: bad sketch magic")
	}
	m := int(binary.LittleEndian.Uint64(data[4:]))
	n := math.Float64frombits(binary.LittleEndian.Uint64(data[12:]))
	c := math.Float64frombits(binary.LittleEndian.Uint64(data[20:]))
	l := int(binary.LittleEndian.Uint64(data[28:]))
	d := uint(data[36])
	vlen := int(binary.LittleEndian.Uint64(data[37:]))
	if len(data) != 45+vlen {
		return nil, fmt.Errorf("core: sketch body length %d, want %d", len(data)-45, vlen)
	}
	cfg, err := newConfig(m, n, c)
	if err != nil {
		return nil, fmt.Errorf("core: rejected serialized parameters: %w", err)
	}
	allOpts := append([]Option{WithResolution(d)}, opts...)
	s := NewSketch(cfg, 0, allOpts...)
	if err := s.v.UnmarshalBinary(data[45:]); err != nil {
		return nil, err
	}
	if s.v.Len() != m {
		return nil, fmt.Errorf("core: bitmap length %d does not match m = %d", s.v.Len(), m)
	}
	if s.v.Ones() != l {
		return nil, fmt.Errorf("core: bitmap popcount %d does not match recorded L = %d", s.v.Ones(), l)
	}
	s.l = l
	s.cur = s.thresholdAt(l)
	return s, nil
}
