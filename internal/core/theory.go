package core

import (
	"fmt"
	"math"
	"sort"
)

// This file implements the exact probabilistic model of the S-bitmap:
// the non-stationary Markov chain of Theorem 1 and the moments of the
// filling times T_b from Lemma 1. Exact dynamic programming over the chain
// lets the test suite verify Theorem 3 (unbiasedness and scale-invariant
// RRMSE) to numerical precision, with no Monte-Carlo noise.

// Chain is the exact distribution of the fill level L_t as t distinct items
// stream in, evolved one step at a time.
type Chain struct {
	cfg  *Config
	dist []float64 // dist[k] = P(L_t = k)
	t    int
}

// NewChain returns the chain at t = 0 (L_0 = 0 with probability 1).
//
// The chain tabulates the config's schedule up front: Step consults every
// q_k per step, and the chain's own distribution vector is O(m) anyway, so
// trading O(m) table bytes for table-speed stepping keeps the exact-model
// experiments fast without reintroducing tables on the sketch path.
func NewChain(cfg *Config) *Chain {
	d := make([]float64, cfg.m+1)
	d[0] = 1
	return &Chain{cfg: TabulateConfig(cfg), dist: d}
}

// Step advances the chain by one distinct item: from state k the chain
// moves to k+1 with probability q_{k+1} and stays with 1 − q_{k+1}
// (Theorem 1).
func (c *Chain) Step() {
	m := c.cfg.m
	// Walk downward so each state is updated from its pre-step value.
	for k := m; k >= 1; k-- {
		q := c.cfg.Q(k)
		c.dist[k] = c.dist[k]*(1-c.cfg.qNext(k)) + c.dist[k-1]*q
	}
	c.dist[0] *= 1 - c.cfg.Q(1)
	c.t++
}

// qNext returns q_{k+1}, the probability of leaving state k; state m is
// absorbing.
func (cfg *Config) qNext(k int) float64 {
	if k >= cfg.m {
		return 0
	}
	return cfg.Q(k + 1)
}

// T returns the number of distinct items streamed so far.
func (c *Chain) T() int { return c.t }

// Dist returns a copy of the current distribution of L_t.
func (c *Chain) Dist() []float64 {
	return append([]float64(nil), c.dist...)
}

// Prob returns P(L_t = k).
func (c *Chain) Prob(k int) float64 {
	if k < 0 || k > c.cfg.m {
		return 0
	}
	return c.dist[k]
}

// EstimateMoments returns the exact mean and variance of the estimator
// n̂ = t_B with B = min(L_t, k*), under the current distribution of L_t.
// Theorem 3 states mean = t (exactly, absent truncation) and
// sqrt(var)/t = (C−1)^(−1/2).
func (c *Chain) EstimateMoments() (mean, variance float64) {
	var m1, m2 float64
	for k, p := range c.dist {
		if p == 0 {
			continue
		}
		b := k
		if b > c.cfg.kMax {
			b = c.cfg.kMax
		}
		est := c.cfg.sched.estimate(b)
		m1 += p * est
		m2 += p * est * est
	}
	return m1, m2 - m1*m1
}

// MeanL returns E L_t under the current distribution.
func (c *Chain) MeanL() float64 {
	var s float64
	for k, p := range c.dist {
		s += p * float64(k)
	}
	return s
}

// EstimateDistribution returns the exact probability mass function of the
// estimator n̂ = t_B under the current chain state, as parallel slices of
// ascending estimate values and their probabilities. States beyond the
// truncation point collapse onto t_{k*} (Equation 8), so the last value
// may aggregate several states.
func (c *Chain) EstimateDistribution() (values, probs []float64) {
	kMax := c.cfg.kMax
	values = make([]float64, 0, kMax+1)
	probs = make([]float64, 0, kMax+1)
	for b := 0; b <= kMax; b++ {
		p := c.dist[b]
		if b == kMax {
			for k := kMax + 1; k <= c.cfg.m; k++ {
				p += c.dist[k]
			}
		}
		if p == 0 {
			continue
		}
		values = append(values, c.cfg.sched.estimate(b))
		probs = append(probs, p)
	}
	return values, probs
}

// ExactErrorMetrics returns the estimator's exact L1 error E|n̂/n − 1|,
// L2 error (RRMSE including bias), and the q-quantile of |n̂/n − 1|, all
// computed from the exact distribution — the theoretical counterparts of
// the columns in the paper's Tables 3-4. n is the true cardinality (use
// Chain.T()); q must lie in [0, 1].
func (c *Chain) ExactErrorMetrics(n int, q float64) (l1, l2, quantile float64) {
	if n <= 0 {
		panic("core: ExactErrorMetrics with non-positive n")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("core: quantile %v outside [0, 1]", q))
	}
	values, probs := c.EstimateDistribution()
	type errProb struct{ e, p float64 }
	eps := make([]errProb, len(values))
	nn := float64(n)
	for i, v := range values {
		e := math.Abs(v/nn - 1)
		eps[i] = errProb{e, probs[i]}
		l1 += probs[i] * e
		l2 += probs[i] * e * e
	}
	l2 = math.Sqrt(l2)
	sort.Slice(eps, func(i, j int) bool { return eps[i].e < eps[j].e })
	cum := 0.0
	quantile = eps[len(eps)-1].e
	for _, ep := range eps {
		cum += ep.p
		if cum >= q-1e-12 {
			quantile = ep.e
			break
		}
	}
	return l1, l2, quantile
}

// FillTimeMoments returns the exact mean and variance of T_b, the number of
// distinct items needed to fill b buckets, from Lemma 1:
//
//	E T_b   = Σ_{k≤b} 1/q_k
//	Var T_b = Σ_{k≤b} (1−q_k)/q_k².
//
// By the dimensioning rule these satisfy E T_b = t_b and
// sqrt(Var T_b)/E T_b = C^(−1/2) for b ≤ k* (Theorem 2, Equation 4).
func (cfg *Config) FillTimeMoments(b int) (mean, variance float64) {
	if b < 0 || b > cfg.m {
		panic(fmt.Sprintf("core: fill time index %d outside [0, %d]", b, cfg.m))
	}
	for k := 1; k <= b; k++ {
		q := cfg.Q(k)
		mean += 1 / q
		variance += (1 - q) / (q * q)
	}
	return mean, variance
}

// TheoreticalRRMSE returns (C−1)^(−1/2), the scale-invariant error of
// Theorem 3. Identical to Config.Epsilon; provided under the theorem's name
// for readability at call sites that quote the theory.
func (cfg *Config) TheoreticalRRMSE() float64 { return cfg.Epsilon() }

// RelFillTimeError returns sqrt(Var T_b)/E T_b, which Theorem 2 makes
// constant ≡ C^(−1/2) for 1 ≤ b ≤ k*.
func (cfg *Config) RelFillTimeError(b int) float64 {
	mean, variance := cfg.FillTimeMoments(b)
	if mean == 0 {
		return 0
	}
	return math.Sqrt(variance) / mean
}
