package core

// Golden equivalence tests for the closed-form rate schedule: the original
// implementation tabulated p_k, t_b, and the 64-bit acceptance thresholds
// (one entry per bucket, ~24 bytes of auxiliary tables per bitmap BIT);
// the closed-form schedule must reproduce that implementation bit for bit.
// seedTables and oracleSketch below are verbatim replicas of the original
// table construction and insert loop, kept test-only as the oracle.

import (
	"math"
	"math/big"
	"math/bits"
	"testing"

	"repro/internal/uhash"
)

// seedTables rebuilds the rate and estimator tables exactly as the
// original newConfig did, from the config's dimensioning fields.
func seedTables(cfg *Config) (p, t []float64) {
	m, c, kMax := cfg.m, cfg.c, cfg.kMax
	p = make([]float64, m)
	logR := math.Log(cfg.r)
	scale := 1 + 1/c
	for k := 1; k <= m; k++ {
		kk := k
		if kk > kMax {
			kk = kMax
		}
		q := scale * math.Exp(float64(kk)*logR)
		pk := q * float64(m) / float64(m+1-kk)
		if pk > 1 {
			pk = 1
		}
		p[k-1] = pk
	}
	t = make([]float64, m+1)
	for b := 1; b <= m; b++ {
		bb := b
		if bb > kMax {
			bb = kMax
		}
		t[b] = c / 2 * (math.Exp(-float64(bb)*logR) - 1)
	}
	return p, t
}

// seedRateThreshold is the original math.Pow-based threshold conversion;
// the Ldexp replacement must agree everywhere it was (luckily) exact.
func seedRateThreshold(p float64, d uint) uint64 {
	if p >= 1 {
		return math.MaxUint64
	}
	if p <= 0 {
		return 0
	}
	scaled := math.Ceil(p * math.Pow(2, float64(d)))
	max := math.Pow(2, float64(d))
	if scaled >= max {
		return math.MaxUint64
	}
	t := uint64(scaled)
	if d < 64 {
		return t << (64 - d)
	}
	return t
}

// goldenConfigs is the (m, N) sweep the equivalence tests run over: small,
// odd-sized, paper-quoted, and truncation-heavy shapes.
func goldenConfigs(t *testing.T) map[string]*Config {
	t.Helper()
	cfgs := make(map[string]*Config)
	mn := func(name string, m int, n float64) {
		cfg, err := NewConfigMN(m, n)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cfgs[name] = cfg
	}
	mn("small-m64", 64, 1e3)
	mn("odd-m777", 777, 5e4)
	mn("paper-m4000", 4000, 1<<20)
	ne, err := NewConfigNE(1e6, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	cfgs["ne-1e6-3pc"] = ne
	mc, err := NewConfigMC(2000, 500)
	if err != nil {
		t.Fatal(err)
	}
	cfgs["mc-2000-500"] = mc
	return cfgs
}

// TestClosedFormMatchesSeedTables: every p_k and t_b the closed form
// produces is bit-identical to the table the original implementation
// built, and TabulateConfig reproduces both.
func TestClosedFormMatchesSeedTables(t *testing.T) {
	for name, cfg := range goldenConfigs(t) {
		p, tt := seedTables(cfg)
		tab := TabulateConfig(cfg)
		for k := 1; k <= cfg.M(); k++ {
			if got, want := cfg.P(k), p[k-1]; math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s: P(%d) = %x, seed table %x", name, k, math.Float64bits(got), math.Float64bits(want))
			}
			if got, want := tab.P(k), p[k-1]; math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s: tabulated P(%d) diverges", name, k)
			}
		}
		for b := 0; b <= cfg.M(); b++ {
			if got, want := cfg.T(b), tt[b]; math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s: T(%d) = %x, seed table %x", name, b, math.Float64bits(got), math.Float64bits(want))
			}
			if got, want := tab.T(b), tt[b]; math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s: tabulated T(%d) diverges", name, b)
			}
		}
		if cfg.AuxBytes() >= 256 {
			t.Errorf("%s: closed-form config aux bytes = %d, want O(1) (< 256)", name, cfg.AuxBytes())
		}
		if tab.AuxBytes() < 8*cfg.M() {
			t.Errorf("%s: tabulated config aux bytes = %d, want O(m) tables", name, tab.AuxBytes())
		}
	}
}

// goldenDBits are the sampling resolutions swept by the threshold and
// sketch equivalence tests (the paper's d = 30, both shift boundaries,
// and the continuous default).
var goldenDBits = []uint{1, 8, 30, 31, 32, 33, 63, 64}

// TestThresholdScheduleMatchesSeedTable: the cached-register threshold
// progression equals the per-level threshold table the original sketch
// precomputed, at every fill level and every resolution.
func TestThresholdScheduleMatchesSeedTable(t *testing.T) {
	for name, cfg := range goldenConfigs(t) {
		p, _ := seedTables(cfg)
		for _, d := range goldenDBits {
			s := NewSketch(cfg, 1, WithResolution(d))
			for l := 0; l < cfg.M(); l++ {
				want := seedRateThreshold(p[l], d)
				if got := s.thresholdAt(l); got != want {
					t.Fatalf("%s d=%d: thresholdAt(%d) = %#x, seed table %#x", name, d, l, got, want)
				}
			}
			if got := s.thresholdAt(cfg.M()); got != 0 {
				t.Fatalf("%s d=%d: full-bitmap threshold = %#x, want 0", name, d, got)
			}
		}
	}
}

// oracleSketch replicates the original table-driven insert loop: a
// precomputed threshold table indexed by the current fill level.
type oracleSketch struct {
	m, l       int
	thresholds []uint64
	bits       []bool
	t          []float64
}

func newOracleSketch(cfg *Config, d uint) *oracleSketch {
	p, tt := seedTables(cfg)
	o := &oracleSketch{m: cfg.m, thresholds: make([]uint64, cfg.m), bits: make([]bool, cfg.m), t: tt}
	for k := 1; k <= cfg.m; k++ {
		o.thresholds[k-1] = seedRateThreshold(p[k-1], d)
	}
	return o
}

func (o *oracleSketch) insert(hi, lo uint64) bool {
	j, _ := bits.Mul64(hi, uint64(o.m))
	if o.bits[j] {
		return false
	}
	if o.l >= o.m {
		return false
	}
	if lo >= o.thresholds[o.l] {
		return false
	}
	o.bits[j] = true
	o.l++
	return true
}

// TestSketchMatchesTableOracle drives a closed-form Sketch and the
// table-driven oracle with the same hash words over a duplicate-heavy
// stream and requires bit-identical decisions, fill level, and estimate —
// per item, for uint64 and string keys, across (m, N, dBits).
func TestSketchMatchesTableOracle(t *testing.T) {
	for name, cfg := range goldenConfigs(t) {
		items := int(2 * cfg.N())
		if items > 200_000 {
			items = 200_000
		}
		for _, d := range goldenDBits {
			h := uhash.NewMixer(7)
			s := NewSketch(cfg, 7, WithResolution(d))
			o := newOracleSketch(cfg, d)
			for i := 0; i < items; i++ {
				x := uint64(i % (items/2 + 1)) // ~2× duplication
				hi, lo := h.Sum128Uint64(x)
				want := o.insert(hi, lo)
				if got := s.AddUint64(x); got != want {
					t.Fatalf("%s d=%d item %d: sketch changed=%v, oracle %v", name, d, i, got, want)
				}
			}
			if s.L() != o.l {
				t.Fatalf("%s d=%d: L = %d, oracle %d", name, d, s.L(), o.l)
			}
			b := o.l
			if kMax := cfg.KMax(); b > kMax {
				b = kMax
			}
			if got, want := s.Estimate(), o.t[b]; math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s d=%d: estimate %x, oracle %x", name, d, math.Float64bits(got), math.Float64bits(want))
			}
		}
	}
}

// TestSketchStringAndBatchMatchOracle covers the remaining ingest paths:
// AddString against the oracle, and the batch paths against the per-item
// sketch (all four must land on the same serialized state).
func TestSketchStringAndBatchMatchOracle(t *testing.T) {
	cfg, err := NewConfigMN(1200, 3e4)
	if err != nil {
		t.Fatal(err)
	}
	const d = 30
	items64 := make([]uint64, 60_000)
	itemsStr := make([]string, len(items64))
	for i := range items64 {
		items64[i] = uint64(i % 40_000)
		itemsStr[i] = string(rune('a'+i%26)) + "-key-" + string(rune('0'+i%10))
	}

	h := uhash.NewMixer(3)
	perItem := NewSketch(cfg, 3, WithResolution(d))
	batch := NewSketch(cfg, 3, WithResolution(d))
	oracle := newOracleSketch(cfg, d)
	for _, x := range items64 {
		hi, lo := h.Sum128Uint64(x)
		if got, want := perItem.AddUint64(x), oracle.insert(hi, lo); got != want {
			t.Fatalf("uint64 item %d: sketch %v, oracle %v", x, got, want)
		}
	}
	batch.AddBatch64(items64)
	assertSameSketch(t, "batch64 vs per-item", perItem, batch)

	hs := uhash.NewMixer(5)
	perItemS := NewSketch(cfg, 5, WithResolution(d))
	batchS := NewSketch(cfg, 5, WithResolution(d))
	oracleS := newOracleSketch(cfg, d)
	for _, x := range itemsStr {
		hi, lo := hs.Sum128String(x)
		if got, want := perItemS.AddString(x), oracleS.insert(hi, lo); got != want {
			t.Fatalf("string item %q: sketch %v, oracle %v", x, got, want)
		}
	}
	batchS.AddBatchString(itemsStr)
	assertSameSketch(t, "batchString vs per-item", perItemS, batchS)
}

// TestTableBackedConfigDrivesIdenticalSketch: a Sketch running on the
// table-backed schedule (TabulateConfig) is indistinguishable from one on
// the closed form — same inserts, same state, same estimates.
func TestTableBackedConfigDrivesIdenticalSketch(t *testing.T) {
	for name, cfg := range goldenConfigs(t) {
		items := int(2 * cfg.N())
		if items > 100_000 {
			items = 100_000
		}
		for _, d := range []uint{30, 64} {
			closed := NewSketch(cfg, 11, WithResolution(d))
			tabbed := NewSketch(TabulateConfig(cfg), 11, WithResolution(d))
			for i := 0; i < items; i++ {
				x := uint64(i%(items/2+1)) * 0x9e3779b97f4a7c15
				if got, want := closed.AddUint64(x), tabbed.AddUint64(x); got != want {
					t.Fatalf("%s d=%d item %d: closed %v, table %v", name, d, i, got, want)
				}
			}
			assertSameSketch(t, name, closed, tabbed)
			if a, b := closed.Estimate(), tabbed.Estimate(); math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("%s d=%d: estimates diverge: %v vs %v", name, d, a, b)
			}
		}
	}
}

func assertSameSketch(t *testing.T, label string, a, b *Sketch) {
	t.Helper()
	if a.L() != b.L() {
		t.Fatalf("%s: L %d vs %d", label, a.L(), b.L())
	}
	ab, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(ab) != string(bb) {
		t.Fatalf("%s: serialized states differ", label)
	}
}

// TestRateThresholdExact verifies the Ldexp-based conversion against exact
// integer arithmetic: for every d ∈ [1, 64] the accepted count must be
// ⌈p·2^d⌉ computed without floating point (math/big), and must agree with
// the original Pow-based conversion wherever that one was exact.
func TestRateThresholdExact(t *testing.T) {
	cfg, err := NewConfigMN(500, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	rates := []float64{0.5, 0.25, 1 - 1e-9, 1e-300, math.Nextafter(1, 0), 0x1.fffffep-7}
	for k := 1; k <= cfg.M(); k += 17 {
		rates = append(rates, cfg.P(k))
	}
	for _, p := range rates {
		if p <= 0 || p >= 1 {
			continue
		}
		for d := uint(1); d <= 64; d++ {
			got := rateThreshold(p, d)
			// Exact ⌈p·2^d⌉: p = fr·2^e with fr ∈ [0.5, 1).
			fr, e := math.Frexp(p)
			mant := new(big.Int).SetUint64(uint64(math.Ldexp(fr, 53))) // p = mant·2^(e−53)
			shift := int(d) + e - 53
			exact := new(big.Int)
			if shift >= 0 {
				exact.Lsh(mant, uint(shift))
			} else {
				// ceil(mant / 2^-shift)
				div := new(big.Int).Lsh(big.NewInt(1), uint(-shift))
				rem := new(big.Int)
				exact.DivMod(mant, div, rem)
				if rem.Sign() != 0 {
					exact.Add(exact, big.NewInt(1))
				}
			}
			limit := new(big.Int).Lsh(big.NewInt(1), d)
			var want uint64
			if exact.Cmp(limit) >= 0 {
				want = math.MaxUint64
			} else {
				want = exact.Uint64()
				if d < 64 {
					want <<= 64 - d
				}
			}
			if got != want {
				t.Fatalf("rateThreshold(%x, %d) = %#x, exact %#x", math.Float64bits(p), d, got, want)
			}
			if old := seedRateThreshold(p, d); old != got {
				t.Errorf("rateThreshold(%x, %d) = %#x diverges from Pow-based %#x", math.Float64bits(p), d, got, old)
			}
		}
	}
}

// TestConstructionCostIndependentOfM: dimensioning a Config and building a
// Sketch performs a fixed number of allocations regardless of m — the
// closed-form schedule attaches no per-bucket tables.
func TestConstructionCostIndependentOfM(t *testing.T) {
	allocs := func(m int) float64 {
		return testing.AllocsPerRun(20, func() {
			cfg, err := NewConfigMN(m, 1e6)
			if err != nil {
				t.Fatal(err)
			}
			_ = NewSketch(cfg, 1)
		})
	}
	small, large := allocs(512), allocs(1<<20)
	if small != large {
		t.Errorf("construction allocations grow with m: %v at m=512, %v at m=2^20", small, large)
	}
}
