package core

import (
	"math"
	"testing"
)

// paperFixtures are (m, N, C or ε) triples quoted in the paper's text; the
// dimensioning solver must reproduce them.
func TestPaperDimensioningFixtures(t *testing.T) {
	cases := []struct {
		name  string
		m     int
		n     float64
		wantC float64 // 0 if only ε is quoted
		wantE float64 // 0 if only C is quoted
		tolC  float64
		tolE  float64
	}{
		{"fig2 m=4000", 4000, 1 << 20, 915.6, 0.033, 1.0, 0.001},
		{"fig2 m=1800", 1800, 1 << 20, 373.7, 0.052, 0.5, 0.001},
		{"slammer m=8000", 8000, 1e6, 2026.55, 0.022, 2.5, 0.001},
		{"intro m=30000", 30000, 1e6, 0, 0.0103, 0, 0.0007},
		{"backbone m=7200", 7200, 1.5e6, 0, 0.024, 0, 0.001},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg, err := NewConfigMN(c.m, c.n)
			if err != nil {
				t.Fatal(err)
			}
			if c.wantC > 0 && math.Abs(cfg.C()-c.wantC) > c.tolC {
				t.Errorf("C = %.2f, want %.2f±%.2f", cfg.C(), c.wantC, c.tolC)
			}
			if c.wantE > 0 && math.Abs(cfg.Epsilon()-c.wantE) > c.tolE {
				t.Errorf("epsilon = %.4f, want %.4f±%.4f", cfg.Epsilon(), c.wantE, c.tolE)
			}
			if cfg.M() != c.m {
				t.Errorf("M() = %d, want %d", cfg.M(), c.m)
			}
			if cfg.N() != c.n {
				t.Errorf("N() = %g, want %g", cfg.N(), c.n)
			}
		})
	}
}

func TestEquation7SelfConsistency(t *testing.T) {
	// Solving C from (m, N) and plugging back into Eq. (7) must recover m.
	for _, m := range []int{100, 800, 2700, 6720, 40000} {
		for _, n := range []float64{1e3, 1e4, 1e6, 1e7} {
			cfg, err := NewConfigMN(m, n)
			if err != nil {
				t.Fatalf("m=%d N=%g: %v", m, n, err)
			}
			back := eq7(cfg.C(), n)
			if math.Abs(back-float64(m)) > 0.01 {
				t.Errorf("m=%d N=%g: eq7(C) = %.4f, want %d", m, n, back, m)
			}
		}
	}
}

func TestNewConfigNERoundTrip(t *testing.T) {
	// NewConfigNE must yield RRMSE ≤ ε and memory matching MemoryForNE,
	// and the approximation m ≈ ε⁻²/2·(1 + ln(1+2Nε²)) from Section 5.1
	// should agree within a few percent.
	for _, eps := range []float64{0.01, 0.03, 0.09} {
		for _, n := range []float64{1e3, 1e5, 1e7} {
			cfg, err := NewConfigNE(n, eps)
			if err != nil {
				t.Fatal(err)
			}
			if cfg.Epsilon() > eps*1.0001 {
				t.Errorf("NE(%g,%g): epsilon %g exceeds target", n, eps, cfg.Epsilon())
			}
			m, err := MemoryForNE(n, eps)
			if err != nil {
				t.Fatal(err)
			}
			if m != cfg.M() {
				t.Errorf("MemoryForNE = %d, config M = %d", m, cfg.M())
			}
			approx := 0.5 / (eps * eps) * (1 + math.Log(1+2*n*eps*eps))
			if rel := math.Abs(float64(m)-approx) / approx; rel > 0.05 {
				t.Errorf("NE(%g,%g): m = %d vs §5.1 approximation %.0f (rel %.3f)", n, eps, m, approx, rel)
			}
		}
	}
}

func TestNewConfigMCRecoversN(t *testing.T) {
	// MC(m, C) derives N from Eq. (6); re-solving MN(m, N) must recover C.
	for _, m := range []int{500, 4000} {
		for _, c := range []float64{50, 915.6} {
			cfg, err := NewConfigMC(m, c)
			if err != nil {
				t.Fatal(err)
			}
			back, err := NewConfigMN(m, cfg.N())
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(back.C()-c)/c > 0.01 {
				t.Errorf("MC(%d,%g) → N=%g → MN gives C=%g", m, c, cfg.N(), back.C())
			}
		}
	}
}

func TestTable2SBitmapColumn(t *testing.T) {
	// Table 2's S-bitmap column (unit: 100 bits). The paper's entries were
	// computed from Eq. (7); allow 2% slack for their rounding.
	want := map[[2]float64]float64{ // {N, eps} → memory/100
		{1e3, 0.01}: 59.1, {1e4, 0.01}: 104.9, {1e5, 0.01}: 202.2,
		{1e6, 0.01}: 315.2, {1e7, 0.01}: 430.1,
		{1e3, 0.03}: 11.3, {1e4, 0.03}: 21.9, {1e5, 0.03}: 34.5,
		{1e6, 0.03}: 47.2, {1e7, 0.03}: 60.0,
		{1e3, 0.09}: 2.4, {1e4, 0.09}: 3.8, {1e5, 0.09}: 5.2,
		{1e6, 0.09}: 6.6, {1e7, 0.09}: 8.1,
	}
	for key, cell := range want {
		m, err := MemoryForNE(key[0], key[1])
		if err != nil {
			t.Fatal(err)
		}
		got := float64(m) / 100
		if math.Abs(got-cell)/cell > 0.02 {
			t.Errorf("Table 2 S-bitmap(N=%g, eps=%g) = %.1f, paper %.1f", key[0], key[1], got, cell)
		}
	}
}

func TestRateMonotonicity(t *testing.T) {
	cfg, err := NewConfigMN(2000, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= cfg.M(); k++ {
		p := cfg.P(k)
		if p <= 0 || p > 1 {
			t.Fatalf("p_%d = %g outside (0,1]", k, p)
		}
		if k > 1 && p > cfg.P(k-1)+1e-15 {
			t.Fatalf("sampling rates not monotone: p_%d = %g > p_%d = %g", k, p, k-1, cfg.P(k-1))
		}
	}
	// Beyond kMax the rates are pinned (Section 5.1 remark).
	if cfg.P(cfg.KMax()) != cfg.P(cfg.M()) {
		t.Error("rates beyond kMax not pinned to p_{k*}")
	}
}

func TestQMatchesTheorem2Form(t *testing.T) {
	// For k ≤ k*, q_k must equal (1+1/C)·r^k exactly (up to float error).
	cfg, err := NewConfigMN(3000, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	scale := 1 + 1/cfg.C()
	for _, k := range []int{1, 2, 10, 100, 1000, cfg.KMax()} {
		want := scale * math.Pow(cfg.R(), float64(k))
		got := cfg.Q(k)
		if math.Abs(got-want)/want > 1e-9 {
			t.Errorf("q_%d = %g, want (1+1/C)r^k = %g", k, got, want)
		}
	}
}

func TestEstimatorTable(t *testing.T) {
	cfg, err := NewConfigMN(2500, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.T(0) != 0 {
		t.Errorf("t_0 = %g, want 0", cfg.T(0))
	}
	// t_b must equal the cumulative sum of 1/q_k (Lemma 1) and be strictly
	// increasing up to k*.
	sum := 0.0
	for b := 1; b <= cfg.KMax(); b++ {
		sum += 1 / cfg.Q(b)
		if rel := math.Abs(cfg.T(b)-sum) / sum; rel > 1e-6 {
			t.Fatalf("t_%d = %g, cumulative 1/q = %g (rel %g)", b, cfg.T(b), sum, rel)
		}
		if cfg.T(b) <= cfg.T(b-1) {
			t.Fatalf("t not strictly increasing at b=%d", b)
		}
	}
	// The truncation point estimates ≈ N (Equation 6, up to ⌊k*⌋ rounding:
	// one fewer bucket shrinks t by a factor of r ≈ 1 − 2/C).
	if ratio := cfg.T(cfg.KMax()) / cfg.N(); ratio < cfg.R()*0.999 || ratio > 1.001 {
		t.Errorf("t_{k*} = %g vs N = %g (ratio %g outside [r, 1])", cfg.T(cfg.KMax()), cfg.N(), ratio)
	}
	// Beyond k* the table is pinned.
	if cfg.T(cfg.M()) != cfg.T(cfg.KMax()) {
		t.Error("estimator table not pinned beyond k*")
	}
}

func TestFillTimeRelativeErrorConstant(t *testing.T) {
	// Theorem 2 / Equation (4): sqrt(Var T_b)/E T_b ≡ C^(-1/2) for b ≤ k*.
	cfg, err := NewConfigMN(1500, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / math.Sqrt(cfg.C())
	for _, b := range []int{1, 2, 5, 50, 500, cfg.KMax()} {
		got := cfg.RelFillTimeError(b)
		if math.Abs(got-want)/want > 1e-6 {
			t.Errorf("Re(T_%d) = %g, want C^-1/2 = %g", b, got, want)
		}
	}
}

func TestFillTimeMomentsClosedForm(t *testing.T) {
	// E T_b must match t_b and Var T_b must match C^{-1} t_b² (used in the
	// proof of Theorem 2).
	cfg, err := NewConfigMN(800, 1e4)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []int{1, 7, 77, cfg.KMax()} {
		mean, variance := cfg.FillTimeMoments(b)
		if math.Abs(mean-cfg.T(b))/cfg.T(b) > 1e-9 {
			t.Errorf("E T_%d = %g, want t_b = %g", b, mean, cfg.T(b))
		}
		wantVar := cfg.T(b) * cfg.T(b) / cfg.C()
		if math.Abs(variance-wantVar)/wantVar > 1e-6 {
			t.Errorf("Var T_%d = %g, want t_b²/C = %g", b, variance, wantVar)
		}
	}
}

func TestConfigErrors(t *testing.T) {
	cases := []struct {
		name string
		fn   func() error
	}{
		{"m too small", func() error { _, err := NewConfigMN(4, 100); return err }},
		{"bad N", func() error { _, err := NewConfigMN(100, 0); return err }},
		{"m cannot reach N", func() error { _, err := NewConfigMN(8, 1e12); return err }},
		{"eps zero", func() error { _, err := NewConfigNE(1e4, 0); return err }},
		{"eps one", func() error { _, err := NewConfigNE(1e4, 1); return err }},
		{"NE bad N", func() error { _, err := NewConfigNE(0, 0.01); return err }},
		{"MC bad C", func() error { _, err := NewConfigMC(100, 1); return err }},
		{"MC no buckets", func() error { _, err := NewConfigMC(10, 100); return err }},
		{"MemoryForNE bad eps", func() error { _, err := MemoryForNE(1e4, 2); return err }},
		{"MemoryForNE bad N", func() error { _, err := MemoryForNE(0.5, 0.01); return err }},
	}
	for _, c := range cases {
		if c.fn() == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestAccessorPanics(t *testing.T) {
	cfg, err := NewConfigMN(100, 1e3)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range []func(){
		func() { cfg.P(0) },
		func() { cfg.P(101) },
		func() { cfg.Q(0) },
		func() { cfg.T(-1) },
		func() { cfg.T(101) },
		func() { cfg.FillTimeMoments(101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
