// Package core implements the paper's primary contribution: the S-bitmap
// sketch (Algorithm 2), its dimensioning rule (Theorem 2 and Equation 7),
// the estimator n̂ = t_B (Equation 2) with the truncation rule (Equation 8),
// and the exact non-stationary Markov-chain model of Theorem 1 used to
// verify unbiasedness and scale-invariance without Monte-Carlo noise.
package core

import (
	"fmt"
	"math"
	"unsafe"
)

// Config holds a fully dimensioned S-bitmap parameterization. A Config is
// immutable after construction and may be shared by any number of Sketch
// instances (the rate schedule is read-only).
//
// The three primary quantities are tied together by Equation (7) of the
// paper,
//
//	m = C/2 + ln(1 + 2N/C) / ln(1 + 2/(C−1)),
//
// where m is the bitmap size in bits, N the largest cardinality to be
// estimated, and C the accuracy parameter giving theoretical
// RRMSE = (C−1)^(−1/2). Construct a Config from any two via NewConfigMN,
// NewConfigNE, or NewConfigMC.
type Config struct {
	m    int     // bitmap size in bits
	n    float64 // cardinality upper bound N
	c    float64 // accuracy parameter C
	r    float64 // geometric ratio r = 1 − 2/(C+1)
	kMax int     // truncation index k* = m − C/2 (Section 5.1 remark)

	// sched supplies the sampling rates p_k and estimator values t_b.
	// Theorem-2 configs use the O(1) closed form; NewConfigRates keeps
	// explicit tables for the ablation experiments.
	sched schedule
}

// schedule supplies a Config's sampling rates and estimator values.
//
// The interface exists so the auxiliary state can be O(1): the paper's
// memory claims (Table 2, "about 30 kilobits" for 1% error up to 10^6)
// count only the m bitmap bits, and the closed-form implementation keeps
// the process honest by attaching no per-bucket side tables. Only the
// ablation path (NewConfigRates, which must honor arbitrary caller-supplied
// rates) pays for tables.
type schedule interface {
	// rate returns p_k for k in [1, m]; bounds are the caller's problem.
	rate(k int) float64
	// estimate returns t_b for b in [0, m].
	estimate(b int) float64
	// auxBytes returns the schedule's resident auxiliary memory in bytes.
	auxBytes() int
}

// closedForm evaluates the Theorem 2 schedule on demand:
//
//	p_k = m/(m+1−k) · (1+1/C) · r^k          (held constant past k*)
//	t_b = C/2 · (r^{−b} − 1)                 (truncated at k*)
//
// Each evaluation is one math.Exp plus a handful of multiplies, and the
// Sketch consults it only on 0→1 transitions (at most m times over a
// sketch's lifetime), so no caller ever needs the values tabulated.
// The arithmetic is ordered exactly as the original table builder's loop
// body was, so the values are bit-identical to the tables it produced
// (asserted by the golden equivalence tests).
type closedForm struct {
	m, kMax int
	logR    float64 // ln r
	scale   float64 // 1 + 1/C
	halfC   float64 // C/2
}

func (s closedForm) rate(k int) float64 {
	if k > s.kMax {
		k = s.kMax
	}
	q := s.scale * math.Exp(float64(k)*s.logR)
	p := q * float64(s.m) / float64(s.m+1-k)
	if p > 1 {
		p = 1
	}
	return p
}

func (s closedForm) estimate(b int) float64 {
	if b > s.kMax {
		b = s.kMax
	}
	if b == 0 {
		return 0
	}
	return s.halfC * (math.Exp(-float64(b)*s.logR) - 1)
}

func (s closedForm) auxBytes() int { return int(unsafe.Sizeof(s)) }

// minC is the smallest admissible C. C must exceed 1 for the RRMSE
// (C−1)^(−1/2) to be finite; we additionally require C > 2 so the
// configured error stays below 100% — any looser configuration is
// operationally meaningless and almost certainly a sizing mistake.
const minC = 2

// eq7 evaluates the right-hand side of Equation (7) for given C and N.
func eq7(c, n float64) float64 {
	return c/2 + math.Log(1+2*n/c)/math.Log(1+2/(c-1))
}

// NewConfigMN dimensions an S-bitmap from a memory budget of m bits and a
// cardinality upper bound N, solving Equation (7) for C by bisection.
// This is the constructor used throughout the paper's experiments
// ("m = 4000 bits and N = 2^20 gives C ≈ 915.6").
func NewConfigMN(m int, n float64) (*Config, error) {
	if m < 8 {
		return nil, fmt.Errorf("core: bitmap size m = %d too small (need ≥ 8 bits)", m)
	}
	if n < 1 {
		return nil, fmt.Errorf("core: cardinality bound N = %g must be ≥ 1", n)
	}
	// eq7(C) is increasing in C over the admissible range: the C/2 term
	// dominates for large C and the log-ratio term shrinks as C → 1+.
	// Bracket the root and bisect.
	lo := float64(minC)
	if eq7(lo, n) > float64(m) {
		return nil, fmt.Errorf("core: m = %d bits cannot reach N = %g with RRMSE below 100%% (increase m)", m, n)
	}
	hi := 4.0
	for eq7(hi, n) < float64(m) {
		hi *= 2
		if hi > 1e18 {
			return nil, fmt.Errorf("core: failed to bracket C for m = %d, N = %g", m, n)
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if eq7(mid, n) < float64(m) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return newConfig(m, n, (lo+hi)/2)
}

// NewConfigNE dimensions an S-bitmap for cardinalities up to N with target
// RRMSE epsilon, returning the smallest sufficient bitmap. It implements
// the paper's "to achieve errors no more than 1% for all cardinalities up
// to 10^6 we need only about 30 kilobits" sizing: C = 1 + ε^(−2),
// m = ⌈Equation (7)⌉.
func NewConfigNE(n, epsilon float64) (*Config, error) {
	if epsilon <= 0 || epsilon >= 1 {
		return nil, fmt.Errorf("core: target RRMSE %g outside (0, 1)", epsilon)
	}
	if n < 1 {
		return nil, fmt.Errorf("core: cardinality bound N = %g must be ≥ 1", n)
	}
	c := 1 + 1/(epsilon*epsilon)
	m := int(math.Ceil(eq7(c, n)))
	return newConfig(m, n, c)
}

// NewConfigMC dimensions an S-bitmap from a memory budget m and accuracy
// parameter C, deriving the reachable upper bound N from Equation (6):
// N = C/2 · (r^{−(m−C/2)} − 1).
func NewConfigMC(m int, c float64) (*Config, error) {
	if c <= minC {
		return nil, fmt.Errorf("core: C = %g must exceed 1", c)
	}
	r := 1 - 2/(c+1)
	k := float64(m) - c/2
	if k < 1 {
		return nil, fmt.Errorf("core: m = %d bits leaves no usable buckets at C = %g", m, c)
	}
	n := c / 2 * (math.Pow(r, -k) - 1)
	return newConfig(m, n, c)
}

// MemoryForNE returns the bitmap size in bits that Equation (7) prescribes
// for bound N and RRMSE epsilon, without building the tables. It is the
// S-bitmap column of Table 2 and the denominator of Figure 3.
func MemoryForNE(n, epsilon float64) (int, error) {
	if epsilon <= 0 || epsilon >= 1 {
		return 0, fmt.Errorf("core: target RRMSE %g outside (0, 1)", epsilon)
	}
	if n < 1 {
		return 0, fmt.Errorf("core: cardinality bound N = %g must be ≥ 1", n)
	}
	c := 1 + 1/(epsilon*epsilon)
	return int(math.Ceil(eq7(c, n))), nil
}

// newConfig validates (m, N, C) and attaches the closed-form schedule.
// Construction is O(1): no per-bucket table is built, so dimensioning a
// sketch costs the same whether m is 8 bits or 8 megabits.
func newConfig(m int, n, c float64) (*Config, error) {
	if c <= minC {
		return nil, fmt.Errorf("core: solved C = %g is not > 1; parameters infeasible", c)
	}
	r := 1 - 2/(c+1)
	kMax := int(math.Floor(float64(m) - c/2))
	if kMax < 1 {
		return nil, fmt.Errorf("core: truncation point m − C/2 = %g leaves no buckets (m = %d, C = %g)", float64(m)-c/2, m, c)
	}
	if kMax > m {
		kMax = m
	}
	cfg := &Config{m: m, n: n, c: c, r: r, kMax: kMax}
	// q_k = (1 + 1/C) r^k; p_k = q_k · m/(m+1−k), held constant for
	// k > k* per the Section 5.1 remark so Lemma 1's monotonicity holds.
	cfg.sched = closedForm{m: m, kMax: kMax, logR: math.Log(r), scale: 1 + 1/c, halfC: c / 2}
	return cfg, nil
}

// M returns the bitmap size in bits.
func (c *Config) M() int { return c.m }

// N returns the cardinality upper bound the configuration supports.
func (c *Config) N() float64 { return c.n }

// C returns the accuracy parameter.
func (c *Config) C() float64 { return c.c }

// R returns the geometric ratio r = 1 − 2/(C+1).
func (c *Config) R() float64 { return c.r }

// Epsilon returns the theoretical scale-invariant RRMSE (C−1)^(−1/2)
// (Theorem 3).
func (c *Config) Epsilon() float64 { return 1 / math.Sqrt(c.c-1) }

// KMax returns the truncation index k* = ⌊m − C/2⌋; the estimator output is
// B = min(L, k*) per Equation (8).
func (c *Config) KMax() int { return c.kMax }

// P returns the sampling rate p_k applied when the bitmap currently holds
// k−1 ones, for k in [1, m].
func (c *Config) P(k int) float64 {
	if k < 1 || k > c.m {
		panic(fmt.Sprintf("core: rate index %d outside [1, %d]", k, c.m))
	}
	return c.sched.rate(k)
}

// Q returns q_k = (1 − (k−1)/m)·p_k, the probability that a NEW distinct
// item advances the fill level from k−1 to k (Theorem 1).
func (c *Config) Q(k int) float64 {
	if k < 1 || k > c.m {
		panic(fmt.Sprintf("core: rate index %d outside [1, %d]", k, c.m))
	}
	return (1 - float64(k-1)/float64(c.m)) * c.sched.rate(k)
}

// T returns the estimator value t_b emitted when b buckets are filled;
// T(0) = 0 and T is truncated at b = k*.
func (c *Config) T(b int) float64 {
	if b < 0 || b > c.m {
		panic(fmt.Sprintf("core: estimator index %d outside [0, %d]", b, c.m))
	}
	return c.sched.estimate(b)
}

// AuxBytes returns the resident memory of the configuration's auxiliary
// state — everything beyond the m bitmap bits a Sketch itself holds. It is
// a small constant for Theorem-2 configs (the closed-form schedule) and
// O(m) for NewConfigRates configs (explicit tables).
func (c *Config) AuxBytes() int { return int(unsafe.Sizeof(*c)) + c.sched.auxBytes() }
