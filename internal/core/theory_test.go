package core

import (
	"math"
	"testing"
)

// TestTheorem3ExactUnbiasedness verifies E n̂ = n by exact dynamic
// programming over the Theorem 1 Markov chain — the strongest form of the
// paper's unbiasedness claim, free of Monte-Carlo noise.
func TestTheorem3ExactUnbiasedness(t *testing.T) {
	cfg, err := NewConfigMN(300, 2e4)
	if err != nil {
		t.Fatal(err)
	}
	chain := NewChain(cfg)
	checkpoints := map[int]bool{1: true, 2: true, 10: true, 100: true, 1000: true, 5000: true}
	for n := 1; n <= 5000; n++ {
		chain.Step()
		if !checkpoints[n] {
			continue
		}
		mean, _ := chain.EstimateMoments()
		if rel := math.Abs(mean-float64(n)) / float64(n); rel > 1e-6 {
			t.Errorf("n=%d: exact E n̂ = %.6f (rel err %.2e), want unbiased", n, mean, rel)
		}
	}
}

// TestTheorem3ExactRRMSE verifies RRMSE(n̂) = (C−1)^(−1/2) exactly, for
// cardinalities spanning three orders of magnitude — the scale-invariance
// headline of the paper.
func TestTheorem3ExactRRMSE(t *testing.T) {
	cfg, err := NewConfigMN(300, 2e4)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.TheoreticalRRMSE()
	chain := NewChain(cfg)
	checkpoints := map[int]bool{2: true, 20: true, 200: true, 2000: true}
	for n := 1; n <= 2000; n++ {
		chain.Step()
		if !checkpoints[n] {
			continue
		}
		mean, variance := chain.EstimateMoments()
		got := math.Sqrt(variance) / float64(n)
		_ = mean
		if math.Abs(got-want)/want > 0.02 {
			t.Errorf("n=%d: exact RRMSE = %.5f, theory %.5f", n, got, want)
		}
	}
}

// TestTruncationReducesBoundaryError: near n = N the truncated estimator
// (Eq. 8) must remain unbiased-or-better; the paper says truncation
// "removes one-sided bias and thus reduces the theoretical RRMSE".
func TestTruncationNearBoundary(t *testing.T) {
	cfg, err := NewConfigMN(200, 3000)
	if err != nil {
		t.Fatal(err)
	}
	n := int(cfg.N() * 0.95)
	chain := NewChain(cfg)
	for i := 0; i < n; i++ {
		chain.Step()
	}
	mean, variance := chain.EstimateMoments()
	rrmse := math.Sqrt(variance+math.Pow(mean-float64(n), 2)) / float64(n)
	if rrmse > cfg.TheoreticalRRMSE()*1.05 {
		t.Errorf("n=0.95N: truncated RRMSE %.5f exceeds theory %.5f", rrmse, cfg.TheoreticalRRMSE())
	}
	// Bias must be small and one-sided (truncation can only pull down).
	if mean > float64(n)*1.001 {
		t.Errorf("n=0.95N: mean %.1f overshoots n=%d", mean, n)
	}
}

func TestChainDistributionIsProbability(t *testing.T) {
	cfg, err := NewConfigMN(150, 2000)
	if err != nil {
		t.Fatal(err)
	}
	chain := NewChain(cfg)
	for i := 0; i < 500; i++ {
		chain.Step()
	}
	sum := 0.0
	for _, p := range chain.Dist() {
		if p < -1e-15 {
			t.Fatalf("negative probability %g", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("distribution sums to %g, want 1", sum)
	}
	if chain.T() != 500 {
		t.Errorf("T() = %d, want 500", chain.T())
	}
	if chain.Prob(-1) != 0 || chain.Prob(cfg.M()+1) != 0 {
		t.Error("out-of-range Prob should be 0")
	}
}

func TestChainMeanLMonotone(t *testing.T) {
	cfg, err := NewConfigMN(150, 2000)
	if err != nil {
		t.Fatal(err)
	}
	chain := NewChain(cfg)
	prev := chain.MeanL()
	for i := 0; i < 300; i++ {
		chain.Step()
		cur := chain.MeanL()
		if cur < prev-1e-12 {
			t.Fatalf("E L_t decreased at t=%d: %g -> %g", i+1, prev, cur)
		}
		prev = cur
	}
	if prev <= 0 {
		t.Error("E L_t did not grow")
	}
}

// TestChainMatchesBinomialForFirstStep: after one distinct item,
// P(L_1 = 1) = q_1 exactly.
func TestChainFirstStep(t *testing.T) {
	cfg, err := NewConfigMN(100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	chain := NewChain(cfg)
	chain.Step()
	if got, want := chain.Prob(1), cfg.Q(1); math.Abs(got-want) > 1e-15 {
		t.Errorf("P(L_1=1) = %g, want q_1 = %g", got, want)
	}
	if got, want := chain.Prob(0), 1-cfg.Q(1); math.Abs(got-want) > 1e-15 {
		t.Errorf("P(L_1=0) = %g, want 1-q_1 = %g", got, want)
	}
}

func TestEstimateDistributionIsPMF(t *testing.T) {
	cfg, err := NewConfigMN(200, 3000)
	if err != nil {
		t.Fatal(err)
	}
	chain := NewChain(cfg)
	for i := 0; i < 800; i++ {
		chain.Step()
	}
	values, probs := chain.EstimateDistribution()
	if len(values) != len(probs) || len(values) == 0 {
		t.Fatalf("distribution shape: %d values, %d probs", len(values), len(probs))
	}
	sum := 0.0
	for i, p := range probs {
		if p < 0 {
			t.Fatalf("negative probability %g", p)
		}
		sum += p
		if i > 0 && values[i] <= values[i-1] {
			t.Fatalf("values not ascending at %d", i)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %g", sum)
	}
	// Moments from the PMF must match EstimateMoments.
	var m1, m2 float64
	for i, v := range values {
		m1 += probs[i] * v
		m2 += probs[i] * v * v
	}
	mean, variance := chain.EstimateMoments()
	if math.Abs(m1-mean) > 1e-9*mean {
		t.Errorf("PMF mean %g vs moments mean %g", m1, mean)
	}
	if math.Abs(m2-m1*m1-variance) > 1e-6*variance {
		t.Errorf("PMF variance %g vs moments variance %g", m2-m1*m1, variance)
	}
}

func TestExactErrorMetricsConsistency(t *testing.T) {
	cfg, err := NewConfigMN(200, 3000)
	if err != nil {
		t.Fatal(err)
	}
	chain := NewChain(cfg)
	const n = 500
	for i := 0; i < n; i++ {
		chain.Step()
	}
	l1, l2, q99 := chain.ExactErrorMetrics(n, 0.99)
	// L2 without bias must equal the unbiased RRMSE ε (Theorem 3).
	if math.Abs(l2-cfg.Epsilon())/cfg.Epsilon() > 0.02 {
		t.Errorf("exact L2 = %g, want ε = %g", l2, cfg.Epsilon())
	}
	// Ordering: L1 ≤ L2 (Jensen), and q99 ≥ L2 for any unimodal-ish law.
	if l1 > l2 {
		t.Errorf("L1 %g > L2 %g", l1, l2)
	}
	if q99 < l2 {
		t.Errorf("q99 %g < L2 %g", q99, l2)
	}
	// q=1 returns the worst error; q=0 the best.
	_, _, worst := chain.ExactErrorMetrics(n, 1)
	_, _, best := chain.ExactErrorMetrics(n, 0)
	if worst < q99 || best > q99 {
		t.Errorf("quantiles not ordered: best %g, q99 %g, worst %g", best, q99, worst)
	}
	// The normal approximation of q99 is 2.576·ε; the exact value should
	// be within ~15% of it at this n.
	if approx := 2.576 * cfg.Epsilon(); math.Abs(q99-approx)/approx > 0.15 {
		t.Errorf("q99 = %g far from normal approx %g", q99, approx)
	}
}

func TestExactErrorMetricsPanics(t *testing.T) {
	cfg, err := NewConfigMN(100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	chain := NewChain(cfg)
	chain.Step()
	for _, fn := range []func(){
		func() { chain.ExactErrorMetrics(0, 0.5) },
		func() { chain.ExactErrorMetrics(1, -0.1) },
		func() { chain.ExactErrorMetrics(1, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// TestGeometricFillTimes cross-checks Lemma 1 against the chain: the
// probability that T_1 > t is (1-q_1)^t.
func TestGeometricFillTimes(t *testing.T) {
	cfg, err := NewConfigMN(100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	chain := NewChain(cfg)
	q1 := cfg.Q(1)
	for step := 1; step <= 20; step++ {
		chain.Step()
		want := math.Pow(1-q1, float64(step))
		if got := chain.Prob(0); math.Abs(got-want)/want > 1e-12 {
			t.Fatalf("P(T_1 > %d) = %g, want (1-q_1)^t = %g", step, got, want)
		}
	}
}
