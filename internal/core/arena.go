package core

import (
	"repro/internal/bitvec"
	"repro/internal/uhash"
)

// SketchArena materializes sketches from one shared configuration by slab
// allocation: every sketch under a Config is identically sized, so the
// arena carves Sketch structs, Vector structs, and bitmap words out of
// three parallel slabs instead of paying three heap objects (plus a fresh
// Config and Hasher) per sketch. A keyed store holding millions of tiny
// per-key sketches gets contiguous bitmap storage (fewer cache lines per
// probe, less GC scan work) and a cold path that is a few pointer bumps
// plus one threshold evaluation.
//
// All sketches share the arena's Config and Hasher. Hashers are read-only
// after construction (asserted by the uhash tests), so sharing is safe;
// sharing the hasher also deduplicates per-sketch seed state — for
// tabulation hashing that is 32 KiB of tables per sketch otherwise.
//
// An arena is not safe for concurrent use; callers (the Store) confine
// each arena to one lock stripe. Sketches obtained from the arena remain
// valid for their own lifetime — the arena never reclaims a slot, so
// dropping a sketch leaks its slot until the whole slab is unreachable.
type SketchArena struct {
	cfg      *Config
	h        uhash.Hasher
	dBits    uint
	wordsPer int // bitmap words per sketch

	// Free slots of the current slab chunk; a fresh chunk is allocated
	// when they run out. Chunks grow geometrically so a small store does
	// not pay for a big slab up front.
	sketches []Sketch
	vectors  []bitvec.Vector
	words    []uint64
	chunk    int
}

// Arena chunk growth bounds: the first chunk holds arenaChunkMin sketches,
// each subsequent chunk doubles, capped at arenaChunkMax. The cap bounds
// the transient overshoot (allocated-but-unused slots) per arena.
const (
	arenaChunkMin = 4
	arenaChunkMax = 256
)

// NewSketchArena returns an arena producing sketches equivalent to
// NewSketch(cfg, seed, opts...). Construction allocates no slabs; the
// first New does.
func NewSketchArena(cfg *Config, seed uint64, opts ...Option) *SketchArena {
	o := sketchOptions{dBits: 64}
	for _, opt := range opts {
		opt(&o)
	}
	if o.hasher == nil {
		o.hasher = uhash.NewMixer(seed)
	}
	return &SketchArena{
		cfg:      cfg,
		h:        o.hasher,
		dBits:    o.dBits,
		wordsPer: (cfg.m + 63) / 64,
	}
}

// New returns an empty sketch bit-identical in behavior to
// NewSketch(cfg, seed, opts...) with the arena's construction arguments,
// allocating a new slab chunk only when the current one is exhausted.
func (a *SketchArena) New() *Sketch {
	if len(a.sketches) == 0 {
		if a.chunk == 0 {
			a.chunk = arenaChunkMin
		} else if a.chunk < arenaChunkMax {
			a.chunk *= 2
		}
		a.sketches = make([]Sketch, a.chunk)
		a.vectors = make([]bitvec.Vector, a.chunk)
		a.words = make([]uint64, a.chunk*a.wordsPer)
	}
	s := &a.sketches[0]
	v := &a.vectors[0]
	w := a.words[:a.wordsPer]
	a.sketches = a.sketches[1:]
	a.vectors = a.vectors[1:]
	a.words = a.words[a.wordsPer:]
	*v = bitvec.Make(w, a.cfg.m)
	*s = Sketch{cfg: a.cfg, h: a.h, v: v, dBits: a.dBits}
	s.cur = s.thresholdAt(0)
	return s
}
