package core

import (
	"fmt"
	"math"
	"unsafe"
)

// rateTable is the table-backed schedule: explicit p and t arrays, one
// entry per bucket. It backs NewConfigRates (arbitrary rates have no closed
// form) and TabulateConfig; Theorem-2 configs use closedForm instead and
// carry no O(m) state.
type rateTable struct {
	// p[k-1] is the sampling rate p_k used when the bitmap holds k−1 ones.
	p []float64
	// t[b] = t_b, the estimate emitted when B = b; t[0] = 0.
	t []float64
}

func (s *rateTable) rate(k int) float64     { return s.p[k-1] }
func (s *rateTable) estimate(b int) float64 { return s.t[b] }
func (s *rateTable) auxBytes() int {
	return int(unsafe.Sizeof(*s)) + 8*(cap(s.p)+cap(s.t))
}

// TabulateConfig returns a Config with the same dimensioning as cfg but
// backed by explicit rate and estimator tables — the representation every
// Config had before the closed-form schedule, rebuilt by evaluating the
// schedule at every index. It exists as the oracle of the golden
// equivalence tests and as the worst-case datapoint of the memory
// benchmark; production code has no reason to call it.
func TabulateConfig(cfg *Config) *Config {
	tab := &rateTable{p: make([]float64, cfg.m), t: make([]float64, cfg.m+1)}
	for k := 1; k <= cfg.m; k++ {
		tab.p[k-1] = cfg.sched.rate(k)
	}
	for b := 0; b <= cfg.m; b++ {
		tab.t[b] = cfg.sched.estimate(b)
	}
	out := *cfg
	out.sched = tab
	return &out
}

// NewConfigRates builds a Config from an explicit, caller-supplied rate
// schedule p[0..m-1] (p[k-1] = p_k). The estimator table is derived from
// Lemma 1 regardless of whether the rates follow the Theorem 2 rule:
// t_b = Σ_{k≤b} 1/q_k with q_k = (1−(k−1)/m)·p_k, and no truncation is
// applied (kMax = m, N = t_m).
//
// This constructor exists for the ablation experiments: it lets the
// harness run the S-bitmap machinery under non-optimal schedules (pure
// geometric rates, rates without the occupancy correction, untruncated
// tables) and show how each departure breaks the scale-invariance the
// dimensioning rule buys. Production users should prefer NewConfigMN /
// NewConfigNE.
func NewConfigRates(m int, p []float64) (*Config, error) {
	if m < 2 {
		return nil, fmt.Errorf("core: bitmap size m = %d too small", m)
	}
	if len(p) != m {
		return nil, fmt.Errorf("core: rate schedule has %d entries, want m = %d", len(p), m)
	}
	for k, pk := range p {
		if pk <= 0 || pk > 1 {
			return nil, fmt.Errorf("core: rate p_%d = %g outside (0, 1]", k+1, pk)
		}
		if k > 0 && pk > p[k-1]+1e-15 {
			return nil, fmt.Errorf("core: rate schedule not monotone at k = %d (%g > %g); monotonicity is required for duplicate filtering (Lemma 1)", k+1, pk, p[k-1])
		}
	}
	cfg := &Config{m: m, kMax: m}
	tab := &rateTable{
		p: append([]float64(nil), p...),
		t: make([]float64, m+1),
	}
	sum := 0.0
	for k := 1; k <= m; k++ {
		q := (1 - float64(k-1)/float64(m)) * tab.p[k-1]
		sum += 1 / q
		tab.t[k] = sum
	}
	cfg.sched = tab
	cfg.n = tab.t[m]
	// Effective C is not constant under arbitrary rates; report the value
	// implied by the first step so Epsilon remains meaningful as a rough
	// scale, and flag the config as custom via r = 0.
	cfg.c = math.Max(2+1e-9, 1/math.Max(1e-12, 1-tab.p[0]))
	cfg.r = 0
	return cfg, nil
}

// GeometricRates returns the naive Morris-style schedule p_k = ρ^k with ρ
// chosen by bisection so that the schedule's reach t_m equals n: the
// "obvious" adaptive-sampling bitmap an implementer might build without
// the paper's Theorem 2 analysis. Used by the ablation_rates experiment.
func GeometricRates(m int, n float64) ([]float64, error) {
	if m < 2 || n < 1 {
		return nil, fmt.Errorf("core: invalid geometric schedule m = %d, n = %g", m, n)
	}
	reach := func(rho float64) float64 {
		sum := 0.0
		pk := 1.0
		for k := 1; k <= m; k++ {
			pk *= rho
			q := (1 - float64(k-1)/float64(m)) * pk
			sum += 1 / q
		}
		return sum
	}
	// reach is decreasing in rho? Larger rho → larger p_k → smaller 1/q →
	// smaller reach. So bisect with reach(lo) > n > reach(hi) for lo < hi.
	lo, hi := 1e-6, 1-1e-12
	if reach(hi) > n {
		return nil, fmt.Errorf("core: %d buckets cannot avoid overshooting n = %g even at rho → 1", m, n)
	}
	if reach(lo) < n {
		return nil, fmt.Errorf("core: n = %g unreachable with %d buckets at any geometric rate", n, m)
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if reach(mid) > n {
			lo = mid
		} else {
			hi = mid
		}
	}
	rho := (lo + hi) / 2
	p := make([]float64, m)
	pk := 1.0
	for k := range p {
		pk *= rho
		p[k] = pk
	}
	return p, nil
}

// UncorrectedRates returns the Theorem 2 schedule WITHOUT the occupancy
// correction m/(m+1−k): p_k = (1+1/C)·r^k directly. The resulting q_k
// decay faster than the dimensioning rule wants as the bitmap fills, so
// the relative error grows with n. Used by the ablation_rates experiment.
func UncorrectedRates(m int, c float64) ([]float64, error) {
	if m < 2 || c <= minC {
		return nil, fmt.Errorf("core: invalid uncorrected schedule m = %d, C = %g", m, c)
	}
	r := 1 - 2/(c+1)
	p := make([]float64, m)
	scale := 1 + 1/c
	logR := math.Log(r)
	for k := 1; k <= m; k++ {
		pk := scale * math.Exp(float64(k)*logR)
		if pk > 1 {
			pk = 1
		}
		p[k-1] = pk
	}
	return p, nil
}
