package core

import (
	"testing"
)

// FuzzUnmarshalSketch hardens the deserialization path: arbitrary bytes
// must produce an error or a usable sketch, never a panic or a sketch
// with inconsistent internal state.
func FuzzUnmarshalSketch(f *testing.F) {
	cfg, err := NewConfigMN(200, 2000)
	if err != nil {
		f.Fatal(err)
	}
	valid := NewSketch(cfg, 1)
	for i := uint64(0); i < 500; i++ {
		valid.AddUint64(i)
	}
	blob, err := valid.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte{})
	f.Add([]byte{0x01, 0xab, 0x17, 0x5b}) // magic prefix only
	long := append([]byte(nil), blob...)
	long[20] ^= 0x40 // perturb C
	f.Add(long)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := UnmarshalSketch(data)
		if err != nil {
			return
		}
		// A successfully parsed sketch must be internally consistent and
		// usable without panicking.
		if s.L() < 0 || s.L() > s.Config().M() {
			t.Fatalf("inconsistent L = %d for m = %d", s.L(), s.Config().M())
		}
		est := s.Estimate()
		if est < 0 {
			t.Fatalf("negative estimate %g", est)
		}
		if _, err := s.MarshalBinary(); err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
	})
}

// FuzzConfigMN hardens the dimensioning solver across its whole domain:
// any (m, N) must either error cleanly or yield a self-consistent config.
func FuzzConfigMN(f *testing.F) {
	f.Add(4000, 1048576.0)
	f.Add(8, 1.0)
	f.Add(100, 1e12)
	f.Add(1000000, 2.0)
	f.Fuzz(func(t *testing.T, m int, n float64) {
		if m > 1_000_000 {
			m %= 1_000_000 // keep table allocation bounded
		}
		cfg, err := NewConfigMN(m, n)
		if err != nil {
			return
		}
		if cfg.Epsilon() <= 0 || cfg.Epsilon() >= 1 {
			t.Fatalf("m=%d n=%g: epsilon %g out of range", m, n, cfg.Epsilon())
		}
		if cfg.KMax() < 1 || cfg.KMax() > cfg.M() {
			t.Fatalf("m=%d n=%g: kMax %d out of range", m, n, cfg.KMax())
		}
		// Rates monotone, estimates increasing.
		for k := 2; k <= cfg.M(); k++ {
			if cfg.P(k) > cfg.P(k-1)+1e-15 {
				t.Fatalf("m=%d n=%g: rates not monotone at k=%d", m, n, k)
			}
		}
		if cfg.T(cfg.KMax()) <= 0 {
			t.Fatalf("m=%d n=%g: non-positive reach", m, n)
		}
	})
}
