package core

import (
	"bytes"
	"testing"

	"repro/internal/uhash"
)

// TestArenaSketchEquivalence: a slab-allocated sketch must be
// bit-identical to a heap-constructed one under the same config, seed,
// and input — across chunk boundaries and with neighbors in the same slab
// ingesting interleaved (no cross-talk through the shared word slab).
func TestArenaSketchEquivalence(t *testing.T) {
	cfg, err := NewConfigNE(1e4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	const nSketches = 40 // crosses the 4, 8, 16, ... chunk growths
	arena := NewSketchArena(cfg, 7)
	slabbed := make([]*Sketch, nSketches)
	heaped := make([]*Sketch, nSketches)
	for i := range slabbed {
		slabbed[i] = arena.New()
		heaped[i] = NewSketch(cfg, 7)
	}
	// Interleaved ingest: round-robin over all sketches so slab neighbors
	// mutate concurrently-in-time (any shared-state bug would cross-talk).
	for round := 0; round < 300; round++ {
		for i := range slabbed {
			item := uint64(round*31+i*7) % 900 // duplicates included
			a := slabbed[i].AddUint64(item)
			b := heaped[i].AddUint64(item)
			if a != b {
				t.Fatalf("sketch %d round %d: slab changed=%v heap changed=%v", i, round, a, b)
			}
		}
	}
	var scr uhash.Scratch
	for i := range slabbed {
		// Tail batch through the borrowed-scratch path vs the native one.
		batch := []uint64{1, 2, 3, uint64(i), uint64(i), 1 << 40}
		if a, b := slabbed[i].AddBatch64Scratch(&scr, batch), heaped[i].AddBatch64(batch); a != b {
			t.Fatalf("sketch %d: batch changed %d (slab+scratch) vs %d (heap)", i, a, b)
		}
		if slabbed[i].Estimate() != heaped[i].Estimate() {
			t.Fatalf("sketch %d: estimates diverged", i)
		}
		sb, err := slabbed[i].MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		hb, err := heaped[i].MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sb, hb) {
			t.Fatalf("sketch %d: serialized state diverged", i)
		}
	}
}

// TestArenaOptions: resolution and hash-family options must reach the
// slabbed sketches exactly as they reach NewSketch.
func TestArenaOptions(t *testing.T) {
	cfg, err := NewConfigNE(1e4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	arena := NewSketchArena(cfg, 0,
		WithResolution(30), WithHasher(uhash.NewTabulation(9)))
	a := arena.New()
	b := NewSketch(cfg, 0, WithResolution(30), WithHasher(uhash.NewTabulation(9)))
	for i := uint64(0); i < 5000; i++ {
		if ca, cb := a.AddUint64(i%1200), b.AddUint64(i%1200); ca != cb {
			t.Fatalf("item %d: slab changed=%v heap changed=%v", i, ca, cb)
		}
	}
	if a.Estimate() != b.Estimate() {
		t.Fatalf("estimates diverged: %g vs %g", a.Estimate(), b.Estimate())
	}
}

// TestArenaAllocAmortized: steady-state materialization out of a full
// chunk is allocation-free; the three slabs are paid once per chunk.
func TestArenaAllocAmortized(t *testing.T) {
	cfg, err := NewConfigNE(1e4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	arena := NewSketchArena(cfg, 1)
	// Burn through growth chunks until the max-size chunk is current.
	for i := 0; i < arenaChunkMin*2+8; i++ {
		arena.New()
	}
	for arena.chunk < arenaChunkMax {
		for i := 0; i < len(arena.sketches)+1; i++ {
			arena.New()
		}
	}
	if allocs := testing.AllocsPerRun(100, func() { arena.New() }); allocs > 3.0/float64(arenaChunkMax)*100 {
		// ≤ 3 slab allocations amortized over a 256-slot chunk; the run
		// count (100) keeps the occasional chunk boundary visible but
		// bounded.
		t.Errorf("arena.New: %.2f allocs/op, want amortized ~3/%d", allocs, arenaChunkMax)
	}
}
