package core

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/uhash"
	"repro/internal/xrand"
)

func mustConfig(t testing.TB, m int, n float64) *Config {
	t.Helper()
	cfg, err := NewConfigMN(m, n)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestSketchEmpty(t *testing.T) {
	s := NewSketch(mustConfig(t, 500, 1e4), 1)
	if s.L() != 0 || s.B() != 0 || s.Estimate() != 0 {
		t.Errorf("empty sketch: L=%d B=%d est=%g", s.L(), s.B(), s.Estimate())
	}
	if s.Saturated() {
		t.Error("empty sketch reports saturated")
	}
	if s.FillRatio() != 0 {
		t.Error("empty sketch has nonzero fill ratio")
	}
	if s.SizeBits() != 500 {
		t.Errorf("SizeBits = %d, want 500", s.SizeBits())
	}
}

func TestDuplicateInvariance(t *testing.T) {
	// The defining property of the monotone-rate design (Section 3's
	// sufficiency argument): replicates arriving AFTER an item's first
	// appearance never change the sketch state. (The state does depend on
	// the order of first appearances — only the estimate's distribution is
	// order-free — so both sketches see the same first-occurrence order.)
	cfg := mustConfig(t, 400, 1e4)
	distinct := NewSketch(cfg, 7)
	dup := NewSketch(cfg, 7)
	r := xrand.New(55)
	items := make([]uint64, 500)
	for i := range items {
		items[i] = r.Uint64()
		distinct.AddUint64(items[i])
		dup.AddUint64(items[i])
	}
	// Replay the whole stream several times in random order; nothing may
	// change.
	for round := 0; round < 5; round++ {
		perm := r.Perm(len(items))
		for _, idx := range perm {
			if dup.AddUint64(items[idx]) {
				t.Fatalf("round %d: replayed duplicate changed the sketch", round)
			}
		}
	}
	if distinct.L() != dup.L() {
		t.Errorf("duplication changed L: %d vs %d", distinct.L(), dup.L())
	}
	if distinct.Estimate() != dup.Estimate() {
		t.Errorf("duplication changed estimate: %g vs %g", distinct.Estimate(), dup.Estimate())
	}
}

func TestDuplicateInvarianceProperty(t *testing.T) {
	cfg := mustConfig(t, 128, 2000)
	f := func(seed uint64, nItems uint8) bool {
		n := int(nItems)%64 + 1
		a := NewSketch(cfg, seed)
		b := NewSketch(cfg, seed)
		r := xrand.New(seed)
		items := make([]uint64, n)
		for i := range items {
			items[i] = r.Uint64()
			a.AddUint64(items[i])
		}
		// b sees each item i+1 times, shuffled.
		var replay []uint64
		for i, it := range items {
			for k := 0; k <= i%3; k++ {
				replay = append(replay, it)
			}
		}
		r.Shuffle(len(replay), func(i, j int) { replay[i], replay[j] = replay[j], replay[i] })
		// Ensure every item appears at least once in replay.
		for _, it := range items {
			b.AddUint64(it)
			_ = it
		}
		for _, it := range replay {
			b.AddUint64(it)
		}
		return a.L() == b.L() && a.Estimate() == b.Estimate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAddReturnValueTracksL(t *testing.T) {
	s := NewSketch(mustConfig(t, 300, 5000), 3)
	r := xrand.New(9)
	changes := 0
	for i := 0; i < 2000; i++ {
		if s.AddUint64(r.Uint64()) {
			changes++
		}
		if changes != s.L() {
			t.Fatalf("after %d adds: %d reported changes but L=%d", i+1, changes, s.L())
		}
	}
}

func TestAddStringMatchesBytes(t *testing.T) {
	cfg := mustConfig(t, 200, 1000)
	a := NewSketch(cfg, 5)
	b := NewSketch(cfg, 5)
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", ""}
	for _, w := range words {
		a.AddString(w)
		b.Add([]byte(w))
	}
	if a.L() != b.L() || a.Estimate() != b.Estimate() {
		t.Errorf("string path diverged: L %d vs %d", a.L(), b.L())
	}
}

func TestAddUint64MatchesBytes(t *testing.T) {
	cfg := mustConfig(t, 200, 1000)
	a := NewSketch(cfg, 5)
	b := NewSketch(cfg, 5)
	for i := uint64(0); i < 300; i++ {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], i)
		a.AddUint64(i)
		b.Add(buf[:])
	}
	if a.L() != b.L() {
		t.Errorf("uint64 path diverged from byte path: L %d vs %d", a.L(), b.L())
	}
}

func TestEstimateMonotoneInL(t *testing.T) {
	s := NewSketch(mustConfig(t, 300, 5000), 11)
	prevL, prevEst := 0, 0.0
	for i := uint64(0); i < 4000; i++ {
		s.AddUint64(i)
		if s.L() < prevL {
			t.Fatal("L decreased")
		}
		if s.L() > prevL && s.Estimate() < prevEst {
			t.Fatalf("estimate decreased while L grew: %g -> %g", prevEst, s.Estimate())
		}
		prevL, prevEst = s.L(), s.Estimate()
	}
}

func TestSaturationCapsEstimate(t *testing.T) {
	cfg := mustConfig(t, 100, 500)
	s := NewSketch(cfg, 13)
	for i := uint64(0); i < 100000; i++ {
		s.AddUint64(i)
	}
	if !s.Saturated() {
		t.Fatalf("sketch not saturated after 200×N items (L=%d, kMax=%d)", s.L(), s.KMaxForTest())
	}
	if s.Estimate() > cfg.N()*1.0001 {
		t.Errorf("estimate %g exceeds N=%g despite truncation", s.Estimate(), cfg.N())
	}
	if s.B() != cfg.KMax() {
		t.Errorf("B = %d, want kMax = %d", s.B(), cfg.KMax())
	}
}

// KMaxForTest exposes the truncation point for test diagnostics.
func (s *Sketch) KMaxForTest() int { return s.cfg.kMax }

func TestMonteCarloUnbiasedAndScaleInvariant(t *testing.T) {
	// End-to-end statistical check of Theorem 3 with real hashing: across
	// n spanning 3 decades, empirical RRMSE must sit near ε and the mean
	// near n. 400 replicates bound the RRMSE estimate's own noise at
	// ~ε/sqrt(2·400) ≈ 3.5% relative, so a 15% band is comfortable.
	cfg := mustConfig(t, 800, 1<<17)
	eps := cfg.Epsilon()
	const reps = 400
	for _, n := range []int{100, 1000, 10000, 100000} {
		var sum stats.ErrorSummary
		for rep := 0; rep < reps; rep++ {
			s := NewSketch(cfg, uint64(1000*n+rep))
			base := uint64(n) * uint64(rep+1) * 2654435761
			for i := 0; i < n; i++ {
				s.AddUint64(base + uint64(i))
			}
			sum.AddEstimate(s.Estimate(), float64(n))
		}
		if got := sum.RRMSE(); math.Abs(got-eps)/eps > 0.15 {
			t.Errorf("n=%d: empirical RRMSE %.4f vs theory %.4f", n, got, eps)
		}
		if bias := sum.Bias(); math.Abs(bias) > 3*eps/math.Sqrt(reps)+0.01*eps {
			t.Errorf("n=%d: bias %.5f too large", n, bias)
		}
	}
}

func TestHasherAblationAgreement(t *testing.T) {
	// The estimate distribution must be insensitive to the hash family
	// (supporting the paper's universal-hash modeling assumption). Run a
	// moderate Monte-Carlo per family and compare RRMSE.
	cfg := mustConfig(t, 600, 1e5)
	const n, reps = 20000, 120
	families := map[string]func(seed uint64) uhash.Hasher{
		"mixer":        func(s uint64) uhash.Hasher { return uhash.NewMixer(s) },
		"carterwegman": func(s uint64) uhash.Hasher { return uhash.NewCarterWegman(s) },
		"tabulation":   func(s uint64) uhash.Hasher { return uhash.NewTabulation(s) },
	}
	eps := cfg.Epsilon()
	for name, mk := range families {
		var sum stats.ErrorSummary
		for rep := 0; rep < reps; rep++ {
			s := NewSketch(cfg, 0, WithHasher(mk(uint64(rep)+77)))
			base := uint64(rep) << 32
			for i := 0; i < n; i++ {
				s.AddUint64(base + uint64(i))
			}
			sum.AddEstimate(s.Estimate(), n)
		}
		if got := sum.RRMSE(); math.Abs(got-eps)/eps > 0.3 {
			t.Errorf("%s: RRMSE %.4f vs theory %.4f", name, got, eps)
		}
	}
}

func TestResolutionD30MatchesD64(t *testing.T) {
	// d=30 (the paper's implementation) must behave like full resolution
	// at these rate scales.
	cfg := mustConfig(t, 600, 1e5)
	const n, reps = 20000, 120
	eps := cfg.Epsilon()
	for _, d := range []uint{30, 64} {
		var sum stats.ErrorSummary
		for rep := 0; rep < reps; rep++ {
			s := NewSketch(cfg, uint64(rep)+123, WithResolution(d))
			base := uint64(rep) << 33
			for i := 0; i < n; i++ {
				s.AddUint64(base + uint64(i))
			}
			sum.AddEstimate(s.Estimate(), n)
		}
		if got := sum.RRMSE(); math.Abs(got-eps)/eps > 0.3 {
			t.Errorf("d=%d: RRMSE %.4f vs theory %.4f", d, got, eps)
		}
	}
}

func TestRateThreshold(t *testing.T) {
	if rateThreshold(1, 64) != math.MaxUint64 {
		t.Error("p=1 must accept everything")
	}
	if rateThreshold(0, 64) != 0 {
		t.Error("p=0 must accept nothing")
	}
	// p=0.5 at d=1: one of two values accepted → threshold 2^63.
	if got := rateThreshold(0.5, 1); got != 1<<63 {
		t.Errorf("rateThreshold(0.5, 1) = %#x, want 1<<63", got)
	}
	// Ceiling semantics: any p in (0, 2^-d] accepts exactly one value.
	if got := rateThreshold(1e-12, 4); got != 1<<60 {
		t.Errorf("rateThreshold(tiny, 4) = %#x, want 1<<60", got)
	}
	// Near-1 p at d=64 must not overflow to 0.
	if got := rateThreshold(1-1e-18, 64); got != math.MaxUint64 {
		t.Errorf("rateThreshold(1-1e-18, 64) = %#x", got)
	}
}

func TestResolutionPanics(t *testing.T) {
	cfg := mustConfig(t, 100, 1000)
	for _, d := range []uint{0, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("d=%d: expected panic", d)
				}
			}()
			NewSketch(cfg, 1, WithResolution(d))
		}()
	}
}

func TestReset(t *testing.T) {
	s := NewSketch(mustConfig(t, 200, 2000), 1)
	for i := uint64(0); i < 500; i++ {
		s.AddUint64(i)
	}
	if s.L() == 0 {
		t.Fatal("no bits set before reset")
	}
	s.Reset()
	if s.L() != 0 || s.Estimate() != 0 {
		t.Errorf("after reset: L=%d est=%g", s.L(), s.Estimate())
	}
	// The sketch must be reusable and deterministic after reset.
	s.AddUint64(42)
	l1 := s.L()
	s.Reset()
	s.AddUint64(42)
	if s.L() != l1 {
		t.Error("reset sketch not deterministic")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	cfg := mustConfig(t, 400, 1e4)
	s := NewSketch(cfg, 21)
	for i := uint64(0); i < 3000; i++ {
		s.AddUint64(i)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSketch(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.L() != s.L() {
		t.Errorf("L after round trip: %d, want %d", got.L(), s.L())
	}
	if got.Estimate() != s.Estimate() {
		t.Errorf("estimate after round trip: %g, want %g", got.Estimate(), s.Estimate())
	}
	if got.Config().M() != cfg.M() || math.Abs(got.Config().C()-cfg.C()) > 1e-9 {
		t.Error("config not reconstructed")
	}
	// Continuing with the same hasher must match the original exactly.
	cont, err := UnmarshalSketch(data, WithHasher(uhash.NewMixer(21)))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(3000); i < 4000; i++ {
		s.AddUint64(i)
		cont.AddUint64(i)
	}
	if cont.L() != s.L() || cont.Estimate() != s.Estimate() {
		t.Error("continued sketch diverged from original")
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	s := NewSketch(mustConfig(t, 200, 2000), 1)
	for i := uint64(0); i < 100; i++ {
		s.AddUint64(i)
	}
	data, _ := s.MarshalBinary()
	cases := map[string]func([]byte) []byte{
		"truncated":  func(d []byte) []byte { return d[:10] },
		"bad magic":  func(d []byte) []byte { d[0] ^= 0xff; return d },
		"bad length": func(d []byte) []byte { return d[:len(d)-4] },
		"bad L":      func(d []byte) []byte { d[28] ^= 0x01; return d },
		"bad C": func(d []byte) []byte {
			d[20] = 0
			d[21] = 0
			d[22] = 0
			d[23] = 0
			d[24] = 0
			d[25] = 0
			d[26] = 0
			d[27] = 0
			return d
		},
	}
	for name, corrupt := range cases {
		bad := corrupt(append([]byte(nil), data...))
		if _, err := UnmarshalSketch(bad); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}
}

func TestSmallCardinalityExactness(t *testing.T) {
	// For n = 1..10 with p_1 close to 1, estimates must be within a few
	// buckets' worth; in particular a single item must give an estimate
	// near 1, not 0 (Table 3's n=10 row shows errors ≈ ε there).
	cfg := mustConfig(t, 2700, 1e4) // Table 3 configuration, ε ≈ 2.6%
	var sum stats.ErrorSummary
	for rep := 0; rep < 300; rep++ {
		s := NewSketch(cfg, uint64(rep))
		s.AddUint64(uint64(rep) * 7919)
		sum.AddEstimate(s.Estimate(), 1)
	}
	if got := sum.RRMSE(); got > 3*cfg.Epsilon() {
		t.Errorf("n=1: RRMSE %.4f, want near ε = %.4f", got, cfg.Epsilon())
	}
}

func BenchmarkSketchAddUint64(b *testing.B) {
	cfg, err := NewConfigMN(8000, 1e6)
	if err != nil {
		b.Fatal(err)
	}
	s := NewSketch(cfg, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AddUint64(uint64(i))
	}
}

func BenchmarkSketchAddDuplicates(b *testing.B) {
	cfg, err := NewConfigMN(8000, 1e6)
	if err != nil {
		b.Fatal(err)
	}
	s := NewSketch(cfg, 1)
	for i := uint64(0); i < 1e5; i++ {
		s.AddUint64(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AddUint64(uint64(i) % 1e5) // all duplicates
	}
}

func BenchmarkEstimate(b *testing.B) {
	cfg, err := NewConfigMN(8000, 1e6)
	if err != nil {
		b.Fatal(err)
	}
	s := NewSketch(cfg, 1)
	for i := uint64(0); i < 1e5; i++ {
		s.AddUint64(i)
	}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = s.Estimate()
	}
	_ = sink
}
