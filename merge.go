package sbitmap

import (
	"errors"
	"fmt"
)

// ErrNotMergeable reports that a counter has no union-merge operation.
//
// Union merging is a property of the sketch's mathematics, not of this
// library: the register/bitmap sketches (HyperLogLog, LogLog, FM, linear
// counting, multiresolution bitmap) are state-idempotent under union, so
// OR-ing or max-ing two same-configured sketches yields exactly the sketch
// of the concatenated streams. The S-bitmap is not — its sampling rate
// depends on its fill history, so two S-bitmaps of overlapping streams
// cannot be combined. The supported aggregation for S-bitmaps is
// partitioning instead: route disjoint key ranges to independent sketches
// and SUM the estimates, which is what Sharded implements. The same rule
// carries to the keyed layer: Store.Merge unions per-key counters and so
// needs a Mergeable kind, while sharding a Store BY key across machines
// works for every kind.
var ErrNotMergeable = errors.New("counter does not support union merge")

// Mergeable is implemented by counters whose state supports union merging:
// after dst.Merge(src), dst summarizes the union of the two input streams.
// Both counters must have identical configuration (dimensions and hash
// function); Merge fails otherwise.
type Mergeable interface {
	Merge(other Counter) error
}

// Merge merges src into dst when dst supports union merging, and returns
// an error wrapping ErrNotMergeable otherwise (test with errors.Is). It is
// the one-call form of the Mergeable type assertion for distributed
// aggregation loops that handle heterogeneous counters.
func Merge(dst, src Counter) error {
	if m, ok := dst.(Mergeable); ok {
		return m.Merge(src)
	}
	return fmt.Errorf("sbitmap: %T: %w", dst, ErrNotMergeable)
}
