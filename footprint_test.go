package sbitmap

import (
	"strings"
	"testing"
	"time"
)

// TestFootprintEveryKind: every constructible kind reports a positive
// footprint that at least covers its summary statistic, and the bitmap
// kinds stay within a small constant of it (no hidden O(m) side state).
func TestFootprintEveryKind(t *testing.T) {
	for _, kind := range Kinds() {
		spec := Spec{Kind: kind, N: 1e6, Eps: 0.01}
		c, err := spec.New()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		fp := c.Footprint()
		if fp <= 0 {
			t.Errorf("%s: footprint %d, want > 0", kind, fp)
		}
		// Exact and adaptive account per-item state, not a fixed summary;
		// the rest must physically hold at least their SizeBits.
		if kind == KindExact || kind == KindAdaptive {
			continue
		}
		if fp < c.SizeBits()/8 {
			t.Errorf("%s: footprint %d B below summary size %d bits", kind, fp, c.SizeBits())
		}
	}
}

// TestSBitmapFootprintNearBitmap is the paper's headline memory claim made
// of the process: an S-bitmap for 1% error up to 10^6 needs about 30
// kilobits, and the process footprint must be that bitmap plus a small
// constant — not the ~24 bytes-per-bit of auxiliary tables the tabulated
// implementation carried.
func TestSBitmapFootprintNearBitmap(t *testing.T) {
	sk, err := New(1e6, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	bitmapBytes := sk.SizeBits() / 8
	aux := sk.Footprint() - bitmapBytes
	if aux < 0 {
		t.Fatalf("footprint %d below bitmap bytes %d", sk.Footprint(), bitmapBytes)
	}
	if aux > 512 {
		t.Errorf("auxiliary state = %d bytes, want a small constant (≤ 512); footprint %d, bitmap %d",
			aux, sk.Footprint(), bitmapBytes)
	}
}

// TestShardedFootprintAggregates: a sharded counter's footprint is the sum
// of its shards' plus bounded decorator overhead.
func TestShardedFootprintAggregates(t *testing.T) {
	const shards = 8
	single, err := New(1e5, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewSharded(shards, 1e5, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	got := sh.Footprint()
	sum := shards * single.Footprint()
	if got < sum {
		t.Errorf("sharded footprint %d below %d× single sketch (%d)", got, shards, sum)
	}
	if overhead := got - sum; overhead > shards*256 {
		t.Errorf("sharded decorator overhead %d bytes for %d shards, want ≤ %d", overhead, shards, shards*256)
	}
}

// TestWindowedFootprintAggregates: a windowed counter's footprint covers
// both rotation sketches plus bounded bookkeeping.
func TestWindowedFootprintAggregates(t *testing.T) {
	single, err := New(1e5, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWindowed(time.Minute, 1e5, 0.02, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := w.Footprint()
	pair := 2 * single.Footprint()
	if got < pair {
		t.Errorf("windowed footprint %d below the rotation pair's %d", got, pair)
	}
	if overhead := got - pair; overhead > 512 {
		t.Errorf("windowed bookkeeping overhead %d bytes, want ≤ 512", overhead)
	}
}

// TestFootprintCountsBatchScratch: the lazily allocated batch-hash buffers
// are real process memory and must show up once used.
func TestFootprintCountsBatchScratch(t *testing.T) {
	sk, err := New(1e4, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	before := sk.Footprint()
	items := make([]uint64, 1000)
	for i := range items {
		items[i] = uint64(i)
	}
	AddBatch64(sk, items)
	if after := sk.Footprint(); after <= before {
		t.Errorf("footprint %d unchanged after batch ingest allocated scratch (was %d)", after, before)
	}
}

// TestFootprintStableUnderIngest: for fixed-size sketches the footprint
// must not grow with the stream (only the one-time scratch allocation may
// appear); counting more items cannot cost more memory.
func TestFootprintStableUnderIngest(t *testing.T) {
	for _, raw := range []string{"sbitmap:n=1e5,eps=0.02", "hll:mbits=8192", "linearcount:mbits=8192"} {
		spec := MustSpec(raw)
		c, err := spec.New()
		if err != nil {
			t.Fatal(err)
		}
		warm := make([]uint64, 256)
		for i := range warm {
			warm[i] = uint64(i)
		}
		AddBatch64(c, warm) // settle the scratch allocation
		settled := c.Footprint()
		for i := 0; i < 50_000; i++ {
			c.AddUint64(uint64(i) * 0x9e3779b97f4a7c15)
		}
		if got := c.Footprint(); got != settled {
			kind := raw[:strings.IndexByte(raw, ':')]
			t.Errorf("%s: footprint moved %d → %d during ingest of a fixed-size sketch", kind, settled, got)
		}
	}
}
