package sbitmap

import (
	"math"
	"testing"

	"repro/internal/stream"
)

func TestNewDimensioning(t *testing.T) {
	sk, err := New(1e6, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if sk.Epsilon() > 0.01*1.0001 {
		t.Errorf("Epsilon = %v, want ≤ 0.01", sk.Epsilon())
	}
	if sk.N() != 1e6 {
		t.Errorf("N = %v", sk.N())
	}
	// The paper's headline: ~30 kilobits for (1e6, 1%).
	if sk.SizeBits() < 25000 || sk.SizeBits() > 35000 {
		t.Errorf("SizeBits = %d, expected ≈ 30k (paper §5.1)", sk.SizeBits())
	}
	m, err := Memory(1e6, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if m != sk.SizeBits() {
		t.Errorf("Memory() = %d, sketch uses %d", m, sk.SizeBits())
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(0, 0.01); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := New(1e6, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := NewWithMemory(4, 1e6); err == nil {
		t.Error("tiny memory accepted")
	}
	if _, err := Memory(1e6, 2); err == nil {
		t.Error("eps=2 accepted")
	}
	if _, err := Unmarshal([]byte("garbage")); err == nil {
		t.Error("garbage unmarshal accepted")
	}
	if _, err := NewMRBitmap(8, 1e9); err == nil {
		t.Error("impossible mr-bitmap accepted")
	}
}

func TestEndToEndAccuracy(t *testing.T) {
	sk, err := New(1e5, 0.02, WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	const n = 30000
	s := stream.NewInterleaved(n, 3*n, stream.DupZipf, 9)
	stream.ForEach(s, func(x uint64) { sk.AddUint64(x) })
	if rel := math.Abs(sk.Estimate()/n - 1); rel > 5*0.02 {
		t.Errorf("estimate %v for n=%d (rel err %.3f)", sk.Estimate(), n, rel)
	}
	if sk.FillLevel() == 0 {
		t.Error("FillLevel = 0 after 30k items")
	}
	if sk.Saturated() {
		t.Error("saturated far below N")
	}
	sk.Reset()
	if sk.Estimate() != 0 {
		t.Error("reset did not clear")
	}
}

func TestSeedDeterminism(t *testing.T) {
	a, _ := New(1e4, 0.03, WithSeed(5))
	b, _ := New(1e4, 0.03, WithSeed(5))
	c, _ := New(1e4, 0.03, WithSeed(6))
	diff := false
	for i := uint64(0); i < 2000; i++ {
		a.AddUint64(i)
		b.AddUint64(i)
		c.AddUint64(i)
	}
	if a.Estimate() != b.Estimate() {
		t.Error("same seed produced different estimates")
	}
	if a.FillLevel() != c.FillLevel() {
		diff = true
	}
	_ = diff // different seeds usually differ, but need not; no assertion
}

func TestHashFamilyOptions(t *testing.T) {
	for name, opt := range map[string]Option{
		"carterwegman": WithCarterWegman(),
		"tabulation":   WithTabulation(),
	} {
		sk, err := New(1e4, 0.05, opt, WithSeed(3))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := uint64(0); i < 5000; i++ {
			sk.AddUint64(i)
		}
		if rel := math.Abs(sk.Estimate()/5000 - 1); rel > 0.25 {
			t.Errorf("%s: estimate %v for n=5000", name, sk.Estimate())
		}
	}
}

func TestSamplingResolutionOption(t *testing.T) {
	sk, err := New(1e4, 0.05, WithSamplingResolution(30))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5000; i++ {
		sk.AddUint64(i)
	}
	if rel := math.Abs(sk.Estimate()/5000 - 1); rel > 0.25 {
		t.Errorf("d=30: estimate %v for n=5000", sk.Estimate())
	}
}

func TestMarshalRoundTripFacade(t *testing.T) {
	sk, _ := New(1e4, 0.03, WithSeed(11))
	for i := uint64(0); i < 3000; i++ {
		sk.AddUint64(i)
	}
	blob, err := sk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(blob, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if back.Estimate() != sk.Estimate() {
		t.Errorf("restored estimate %v, want %v", back.Estimate(), sk.Estimate())
	}
	// Continue counting on both; they must stay identical.
	for i := uint64(3000); i < 4000; i++ {
		sk.AddUint64(i)
		back.AddUint64(i)
	}
	if back.Estimate() != sk.Estimate() {
		t.Error("restored sketch diverged while counting")
	}
}

func TestBaselinesSatisfyCounter(t *testing.T) {
	mr, err := NewMRBitmap(4000, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	counters := map[string]Counter{
		"lc":       NewLinearCounting(4000),
		"vb":       NewVirtualBitmap(4000, 1e5),
		"mr":       mr,
		"fm":       NewFM(4000),
		"loglog":   NewLogLog(4000),
		"hll":      NewHyperLogLog(4000),
		"adaptive": NewAdaptiveSampler(4000),
		"exact":    NewExact(),
	}
	for name, c := range counters {
		const n = 5000
		for i := uint64(0); i < n; i++ {
			c.AddUint64(i)
			c.AddUint64(i) // duplicate; must not matter
		}
		est := c.Estimate()
		tol := 0.35
		if name == "exact" {
			tol = 0
		}
		if math.Abs(est/n-1) > tol+1e-12 {
			t.Errorf("%s: estimate %.0f for n=%d", name, est, n)
		}
		if c.SizeBits() <= 0 {
			t.Errorf("%s: SizeBits = %d", name, c.SizeBits())
		}
		c.Reset()
		// FM's empty-state estimate is m/φ and LogLog's is α·m by
		// construction (neither has a small-range correction); every
		// other sketch must read 0 when empty.
		if name != "fm" && name != "loglog" && c.Estimate() != 0 {
			t.Errorf("%s: estimate %.0f after reset", name, c.Estimate())
		}
	}
}

func TestBaselinesHonorHashOptions(t *testing.T) {
	// Constructors must accept hash-family options without breaking.
	c := NewHyperLogLog(4000, WithCarterWegman(), WithSeed(7))
	for i := uint64(0); i < 10000; i++ {
		c.AddUint64(i)
	}
	if math.Abs(c.Estimate()/10000-1) > 0.3 {
		t.Errorf("HLL+CW estimate %.0f for n=10000", c.Estimate())
	}
}

func TestScaleInvarianceHeadline(t *testing.T) {
	// The library's headline claim, verified through the public API:
	// same configuration, cardinalities 100 and 100000, same error scale.
	const eps = 0.05
	for _, n := range []int{100, 100_000} {
		var se, count float64
		for rep := 0; rep < 80; rep++ {
			sk, err := New(2e5, eps, WithSeed(uint64(rep)+1))
			if err != nil {
				t.Fatal(err)
			}
			s := stream.NewDistinct(n, uint64(rep)*77+3)
			stream.ForEach(s, func(x uint64) { sk.AddUint64(x) })
			d := sk.Estimate()/float64(n) - 1
			se += d * d
			count++
		}
		rrmse := math.Sqrt(se / count)
		if rrmse > 2*eps || rrmse < eps/3 {
			t.Errorf("n=%d: RRMSE %.4f, want ≈ %.2f", n, rrmse, eps)
		}
	}
}
