package sbitmap

import (
	"math"
	"strings"
	"testing"
)

func TestSpecStringRoundTrip(t *testing.T) {
	specs := []Spec{
		{Kind: KindSBitmap, N: 1e6, Eps: 0.01},
		{Kind: KindSBitmap, N: 1e6, MemoryBits: 8000},
		{Kind: KindSBitmap, MemoryBits: 30000, Eps: 0.0103},
		{Kind: KindSBitmap, N: 1e5, Eps: 0.02, Seed: 42, Resolution: 30},
		{Kind: KindSBitmap, N: 250000, Eps: 0.05, Hash: "carterwegman"},
		{Kind: KindHLL, MemoryBits: 4096},
		{Kind: KindHLL, N: 1e6, Eps: 0.01},
		{Kind: KindLogLog, MemoryBits: 5120, Seed: 7},
		{Kind: KindFM, MemoryBits: 4096, Hash: "tabulation"},
		{Kind: KindLinearCount, MemoryBits: 4000},
		{Kind: KindVirtualBitmap, N: 1e5, MemoryBits: 4000},
		{Kind: KindMRBitmap, N: 1e5, MemoryBits: 4000},
		{Kind: KindAdaptive, MemoryBits: 8192},
		{Kind: KindExact},
	}
	for _, want := range specs {
		s := want.String()
		got, err := ParseSpec(s)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", s, err)
			continue
		}
		if got != want {
			t.Errorf("round trip %q: got %+v, want %+v", s, got, want)
		}
		// And the canonical form is a fixed point.
		if got.String() != s {
			t.Errorf("String not canonical: %q reparses to %q", s, got.String())
		}
	}
}

func TestParseSpecForms(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"sbitmap:n=1e6,eps=0.01", Spec{Kind: KindSBitmap, N: 1e6, Eps: 0.01}},
		{"sb:n=1e6,eps=0.01", Spec{Kind: KindSBitmap, N: 1e6, Eps: 0.01}},
		{"hyperloglog:mbits=4e3", Spec{Kind: KindHLL, MemoryBits: 4000}},
		{"HLL:mbits=4096", Spec{Kind: KindHLL, MemoryBits: 4096}},
		{"mr:n=1e5,mbits=4000", Spec{Kind: KindMRBitmap, N: 1e5, MemoryBits: 4000}},
		{"lc : mbits=4000", Spec{Kind: KindLinearCount, MemoryBits: 4000}},
		{"exact", Spec{Kind: KindExact}},
		{"sbitmap:n=1e4,eps=0.05,seed=9,hash=tabulation,d=30",
			Spec{Kind: KindSBitmap, N: 1e4, Eps: 0.05, Seed: 9, Hash: "tabulation", Resolution: 30}},
	}
	for _, tc := range cases {
		got, err := ParseSpec(tc.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"",
		"nope:mbits=100",
		"sbitmap:n=-3,eps=0.01",
		"sbitmap:n=1e6,eps=0",
		"hll:mbits=0",
		"hll:mbits=4096.5",
		"hll:mbits=4096,unknown=1",
		"hll:mbits",
		"sbitmap:hash=md5",
		"sbitmap:d=65",
		"sbitmap:d=0",
		"sbitmap:seed=-1",
		"sbitmap:eps=1e999", // infinite after ParseFloat
		// Duplicate parameters must not silently let the last one win.
		"hll:mbits=64,mbits=128",
		"sbitmap:n=1e6,eps=0.01,n=1e7",
		"sbitmap:n=1e6,N=1e7,eps=0.01", // case-insensitive duplicate
		"hll:mbits=64, mbits =128",     // whitespace around the duplicate
		"sbitmap:seed=1,seed=1",        // even an identical repeat
	}
	for _, s := range bad {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted", s)
		}
	}
	if _, err := ParseSpec("hll:mbits=64,mbits=128"); err == nil || !strings.Contains(err.Error(), "duplicate spec parameter") {
		t.Errorf("duplicate error = %v", err)
	}
}

func TestParseSpecDuplicateKeyRoundTrip(t *testing.T) {
	// The canonical String form emits each parameter once, so every valid
	// Spec still round-trips after the duplicate-key rejection.
	specs := []Spec{
		{Kind: KindHLL, MemoryBits: 128},
		{Kind: KindSBitmap, N: 1e6, Eps: 0.01, Seed: 3, Hash: "tabulation", Resolution: 30},
		{Kind: KindMRBitmap, N: 1e5, MemoryBits: 4000, Seed: 11},
	}
	for _, want := range specs {
		s := want.String()
		got, err := ParseSpec(s)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", s, err)
			continue
		}
		if got != want {
			t.Errorf("round trip %q: got %+v, want %+v", s, got, want)
		}
	}
}

func TestSpecNewEveryKind(t *testing.T) {
	// Every Kind constructs through ParseSpec(...).New() and counts with
	// sane accuracy — the acceptance criterion of the API redesign.
	specs := map[Kind]string{
		KindSBitmap:       "sbitmap:n=1e5,eps=0.02",
		KindHLL:           "hll:n=1e5,eps=0.02",
		KindLogLog:        "loglog:n=1e5,eps=0.02",
		KindFM:            "fm:n=1e5,eps=0.02",
		KindLinearCount:   "linearcount:n=1e5,eps=0.02",
		KindVirtualBitmap: "virtualbitmap:n=1e5,eps=0.02",
		KindMRBitmap:      "mrbitmap:n=1e5,eps=0.02",
		KindAdaptive:      "adaptive:n=1e5,eps=0.02",
		KindExact:         "exact",
	}
	for _, kind := range Kinds() {
		s, ok := specs[kind]
		if !ok {
			t.Fatalf("no spec for kind %s — extend this test", kind)
		}
		spec, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		c, err := spec.New()
		if err != nil {
			t.Fatalf("%s: New: %v", kind, err)
		}
		const n = 20000
		for i := uint64(0); i < n; i++ {
			c.AddUint64(i)
			c.AddUint64(i) // duplicates must not matter
		}
		if rel := math.Abs(c.Estimate()/n - 1); rel > 0.35 {
			t.Errorf("%s: estimate %.0f for n=%d", kind, c.Estimate(), n)
		}
		if kind != KindExact && c.SizeBits() <= 0 {
			t.Errorf("%s: SizeBits = %d", kind, c.SizeBits())
		}
	}
}

func TestSpecNewMatchesClassicConstructors(t *testing.T) {
	// The declarative and imperative paths must build identical sketches.
	classic, err := New(1e5, 0.02, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	viaSpec, err := Spec{Kind: KindSBitmap, N: 1e5, Eps: 0.02, Seed: 5}.New()
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 30000; i++ {
		classic.AddUint64(i)
		viaSpec.AddUint64(i)
	}
	if classic.Estimate() != viaSpec.Estimate() {
		t.Errorf("spec-built estimate %v != classic %v", viaSpec.Estimate(), classic.Estimate())
	}
	if classic.SizeBits() != viaSpec.SizeBits() {
		t.Errorf("spec-built SizeBits %d != classic %d", viaSpec.SizeBits(), classic.SizeBits())
	}

	hllClassic := NewHyperLogLog(4096, WithSeed(5))
	hllSpec, err := Spec{Kind: KindHLL, MemoryBits: 4096, Seed: 5}.New()
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 30000; i++ {
		hllClassic.AddUint64(i)
		hllSpec.AddUint64(i)
	}
	if hllClassic.Estimate() != hllSpec.Estimate() {
		t.Errorf("spec-built HLL estimate %v != classic %v", hllSpec.Estimate(), hllClassic.Estimate())
	}
}

func TestSpecNewErrors(t *testing.T) {
	bad := []Spec{
		{},                          // no kind
		{Kind: "nope"},              // unknown kind
		{Kind: KindSBitmap},         // underdetermined
		{Kind: KindSBitmap, N: 1e6}, // underdetermined
		{Kind: KindSBitmap, N: 1e6, Eps: 0.01, MemoryBits: 8000}, // overdetermined
		{Kind: KindHLL}, // no budget
		{Kind: KindVirtualBitmap, MemoryBits: 4000},       // vb needs n
		{Kind: KindMRBitmap, MemoryBits: 4000},            // mr needs n
		{Kind: KindMRBitmap, N: 1e9, MemoryBits: 64},      // infeasible
		{Kind: KindHLL, MemoryBits: 4096, Resolution: 30}, // d on non-sbitmap
		{Kind: KindHLL, MemoryBits: 4096, Hash: "md5"},    // unknown hash
	}
	for _, spec := range bad {
		if _, err := spec.New(); err == nil {
			t.Errorf("Spec %+v accepted", spec)
		}
	}
}

func TestSpecSBitmapMemEpsDimensioning(t *testing.T) {
	// (mbits, eps) is the third sbdim pairing: N follows from Equation 6.
	c, err := Spec{Kind: KindSBitmap, MemoryBits: 30000, Eps: 0.0103}.New()
	if err != nil {
		t.Fatal(err)
	}
	sb := c.(*SBitmap)
	if sb.SizeBits() != 30000 {
		t.Errorf("SizeBits = %d, want 30000", sb.SizeBits())
	}
	if sb.N() < 0.7e6 || sb.N() > 1.5e6 {
		t.Errorf("derived N = %g, want ≈ 1e6", sb.N())
	}
}

func TestParseKindAliases(t *testing.T) {
	for alias, want := range map[string]Kind{
		"hll": KindHLL, "hyperloglog": KindHLL, "mr": KindMRBitmap,
		"lc": KindLinearCount, "vb": KindVirtualBitmap, "pcsa": KindFM,
		"SBITMAP": KindSBitmap,
	} {
		got, err := ParseKind(alias)
		if err != nil {
			t.Errorf("ParseKind(%q): %v", alias, err)
		} else if got != want {
			t.Errorf("ParseKind(%q) = %s, want %s", alias, got, want)
		}
	}
	if _, err := ParseKind("bloom"); err == nil || !strings.Contains(err.Error(), "unknown sketch kind") {
		t.Errorf("ParseKind(bloom) err = %v", err)
	}
}
