package sbitmap

import (
	"math"
	"strings"
	"testing"
)

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.995, 2.575829},
		{0.84134, 0.99998}, // Φ(1) ≈ 0.84134
		{0.025, -1.959964},
		{0.001, -3.090232},
	}
	for _, c := range cases {
		if got := normalQuantile(c.p); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("normalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(normalQuantile(0)) || !math.IsNaN(normalQuantile(1)) {
		t.Error("boundary quantiles should be NaN")
	}
}

func TestNormalQuantileSymmetry(t *testing.T) {
	for p := 0.01; p < 0.5; p += 0.017 {
		a, b := normalQuantile(p), normalQuantile(1-p)
		if math.Abs(a+b) > 1e-8 {
			t.Errorf("asymmetry at p=%v: %v vs %v", p, a, b)
		}
	}
}

func TestConfidenceIntervalCoverage(t *testing.T) {
	// Empirical coverage of the 95% interval should be ≈ 95%.
	const n = 20000
	const reps = 300
	covered := 0
	for rep := 0; rep < reps; rep++ {
		sk, err := New(1e5, 0.03, WithSeed(uint64(rep)+1))
		if err != nil {
			t.Fatal(err)
		}
		base := uint64(rep) << 34
		for i := 0; i < n; i++ {
			sk.AddUint64(base + uint64(i))
		}
		iv := sk.ConfidenceInterval(0.95)
		if iv.Lo <= n && float64(n) <= iv.Hi {
			covered++
		}
		if iv.Lo > iv.Estimate || iv.Hi < iv.Estimate {
			t.Fatalf("interval %v does not contain its own estimate", iv)
		}
	}
	frac := float64(covered) / reps
	// Binomial noise at 300 reps: sd ≈ 1.3%; allow [90%, 99.5%].
	if frac < 0.90 || frac > 0.995 {
		t.Errorf("95%% interval covered %.1f%% of runs", 100*frac)
	}
}

func TestConfidenceIntervalClamps(t *testing.T) {
	sk, err := New(1000, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Empty sketch: interval collapses at 0.
	iv := sk.ConfidenceInterval(0.99)
	if iv.Lo != 0 || iv.Estimate != 0 {
		t.Errorf("empty interval = %v", iv)
	}
	// Saturated sketch: upper end pinned at N.
	for i := uint64(0); i < 100000; i++ {
		sk.AddUint64(i)
	}
	iv = sk.ConfidenceInterval(0.95)
	if iv.Hi > sk.N() {
		t.Errorf("saturated upper bound %v exceeds N=%v", iv.Hi, sk.N())
	}
	if !strings.Contains(iv.String(), "@95%") {
		t.Errorf("String() = %q", iv.String())
	}
}

func TestIntervalStringLevels(t *testing.T) {
	// The level must render at full precision: 99.5% used to print as
	// "@100%" under %.0f.
	iv := Interval{Estimate: 1234, Lo: 1200, Hi: 1268}
	for _, c := range []struct {
		level float64
		want  string
	}{
		{0.95, "@95%"},
		{0.995, "@99.5%"},
		{0.99, "@99%"},
		{0.999, "@99.9%"},
		{0.9, "@90%"},
	} {
		iv.Level = c.level
		if got := iv.String(); !strings.Contains(got, c.want) {
			t.Errorf("level %v: String() = %q, want suffix %q", c.level, got, c.want)
		}
		if strings.Contains(iv.String(), "@100%") {
			t.Errorf("level %v rendered as 100%%: %q", c.level, iv.String())
		}
	}
	iv.Level = 0.995
	if got, want := iv.String(), "1234 [1200, 1268] @99.5%"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestConfidenceIntervalPanics(t *testing.T) {
	sk, _ := New(1000, 0.05)
	for _, level := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("level %v: expected panic", level)
				}
			}()
			sk.ConfidenceInterval(level)
		}()
	}
}

func TestIntervalWidthScalesWithLevel(t *testing.T) {
	sk, _ := New(1e5, 0.02, WithSeed(3))
	for i := uint64(0); i < 50000; i++ {
		sk.AddUint64(i)
	}
	w90 := sk.ConfidenceInterval(0.90)
	w99 := sk.ConfidenceInterval(0.99)
	if w99.Hi-w99.Lo <= w90.Hi-w90.Lo {
		t.Error("99% interval not wider than 90%")
	}
}
