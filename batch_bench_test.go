package sbitmap

// Batch-vs-per-item ingestion benches: the numbers behind the README's
// Throughput section and the ≥2x (single S-bitmap) / ≥4x (8-shard Sharded,
// concurrent) batch-path claims. Per-item paths go through the Counter
// interface — the dispatch production callers actually pay — and batch
// paths through BulkAdder. Run the Sharded ones with -cpu 1,4,8 to see the
// lock-amortization scaling.

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// batchBenchLen is the per-call batch length of the benches; large enough
// to amortize routing and locking, small enough to be a realistic network
// read quantum.
const batchBenchLen = 4096

// benchSBitmap builds the Section 7.1 configuration sketch.
func benchSBitmap(b *testing.B) Counter {
	b.Helper()
	sk, err := NewWithMemory(8000, 1e6)
	if err != nil {
		b.Fatal(err)
	}
	return sk
}

// benchSharded builds the 8-shard concurrent deployment of the same
// configuration.
func benchSharded(b *testing.B) *Sharded {
	b.Helper()
	s, err := NewSharded(8, 1e6, 0.022)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// fillBatch refills buf with consecutive ids starting at next.
func fillBatch(buf []uint64, next uint64) uint64 {
	for i := range buf {
		buf[i] = next
		next++
	}
	return next
}

func BenchmarkBatchAddSBitmap(b *testing.B) {
	b.Run("peritem", func(b *testing.B) {
		c := benchSBitmap(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.AddUint64(uint64(i))
		}
	})
	b.Run("batch", func(b *testing.B) {
		c := benchSBitmap(b)
		buf := make([]uint64, batchBenchLen)
		var next uint64
		c.(BulkAdder).AddBatch64(buf) // warm scratch buffers
		b.ReportAllocs()
		b.ResetTimer()
		for rem := b.N; rem > 0; {
			n := min(rem, len(buf))
			next = fillBatch(buf[:n], next)
			AddBatch64(c, buf[:n])
			rem -= n
		}
	})
}

// BenchmarkBatchAddSBitmapLarge is the same comparison at production
// scale (N = 10^9, ≈1 MiB of bitmap — the "millions of users"
// dimensioning): the bitmap no longer fits in L1/L2, and the batch loop's
// advantage grows because consecutive probes' cache misses overlap where
// the per-item path serializes each miss behind the next item's hash and
// dispatch.
func BenchmarkBatchAddSBitmapLarge(b *testing.B) {
	mkLarge := func() Counter {
		sk, err := NewWithMemory(1<<23, 1e9)
		if err != nil {
			b.Fatal(err)
		}
		return sk
	}
	b.Run("peritem", func(b *testing.B) {
		c := mkLarge()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.AddUint64(uint64(i))
		}
	})
	b.Run("batch", func(b *testing.B) {
		c := mkLarge()
		buf := make([]uint64, batchBenchLen)
		var next uint64
		c.(BulkAdder).AddBatch64(buf) // warm scratch buffers
		b.ReportAllocs()
		b.ResetTimer()
		for rem := b.N; rem > 0; {
			n := min(rem, len(buf))
			next = fillBatch(buf[:n], next)
			AddBatch64(c, buf[:n])
			rem -= n
		}
	})
}

func BenchmarkBatchAddString(b *testing.B) {
	keys := make([]string, 1<<16)
	for i := range keys {
		keys[i] = fmt.Sprintf("flow-%x-key-%08x", i%26, i)
	}
	b.Run("peritem", func(b *testing.B) {
		c := benchSBitmap(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.AddString(keys[i&(1<<16-1)])
		}
	})
	b.Run("batch", func(b *testing.B) {
		c := benchSBitmap(b)
		b.ReportAllocs()
		for rem := b.N; rem > 0; {
			at := (b.N - rem) & (1<<16 - 1)
			n := min(rem, batchBenchLen, len(keys)-at)
			AddBatchString(c, keys[at:at+n])
			rem -= n
		}
	})
}

// BenchmarkBatchAddSharded measures concurrent ingest into one shared
// 8-shard counter. The per-item path takes a shard lock per item; the
// batch path takes each touched shard's lock once per 4096-item batch.
// Run with -cpu 1,4,8.
func BenchmarkBatchAddSharded(b *testing.B) {
	b.Run("peritem", func(b *testing.B) {
		s := benchSharded(b)
		var ctr atomic.Uint64
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			id := ctr.Add(1) << 40 // disjoint id space per goroutine
			for pb.Next() {
				s.AddUint64(id)
				id++
			}
		})
	})
	b.Run("batch", func(b *testing.B) {
		s := benchSharded(b)
		var ctr atomic.Uint64
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			buf := make([]uint64, batchBenchLen)
			id := ctr.Add(1) << 40
			n := 0
			for pb.Next() {
				buf[n] = id
				id++
				n++
				if n == len(buf) {
					s.AddBatch64(buf)
					n = 0
				}
			}
			if n > 0 {
				s.AddBatch64(buf[:n])
			}
		})
	})
}

// BenchmarkBatchAddShardedString is the string-key variant of the Sharded
// comparison.
func BenchmarkBatchAddShardedString(b *testing.B) {
	keys := make([]string, 1<<16)
	for i := range keys {
		keys[i] = fmt.Sprintf("flow-%x-key-%08x", i%26, i)
	}
	b.Run("peritem", func(b *testing.B) {
		s := benchSharded(b)
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				s.AddString(keys[i&(1<<16-1)])
				i++
			}
		})
	})
	b.Run("batch", func(b *testing.B) {
		s := benchSharded(b)
		b.RunParallel(func(pb *testing.PB) {
			at, n := 0, 0
			for pb.Next() {
				n++
				if n == batchBenchLen {
					s.AddBatchString(keys[at : at+n])
					at = (at + n) & (1<<16 - 1)
					n = 0
				}
			}
			if n > 0 {
				s.AddBatchString(keys[at : at+n])
			}
		})
	})
}
