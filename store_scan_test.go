package sbitmap

import (
	"fmt"
	"testing"
)

// TestStoreForEachDirty: the incremental scan visits exactly the keys in
// stripes touched since the caller's last cut, and independent consumers
// (two scanners, or a scanner beside the checkpointer's MarshalStripes)
// do not disturb each other's cuts.
func TestStoreForEachDirty(t *testing.T) {
	spec := MustSpec("sbitmap:n=1e4,eps=0.1")
	s, err := NewStore[uint64](spec, WithStripes(16))
	if err != nil {
		t.Fatal(err)
	}
	keys, items := keyedWorkload(300, 10000, 9)
	s.AddBatch64(keys, items)

	// since = 0: every live key.
	seen := 0
	cut := s.ForEachDirty(0, func(uint64, Counter) bool { seen++; return true })
	if seen != s.Len() {
		t.Fatalf("full scan visited %d keys, store holds %d", seen, s.Len())
	}
	if cut != s.Generation() {
		t.Fatalf("cut %d != generation %d", cut, s.Generation())
	}

	// Quiescent incremental scan: nothing.
	seen = 0
	cut2 := s.ForEachDirty(cut, func(uint64, Counter) bool { seen++; return true })
	if seen != 0 {
		t.Fatalf("quiescent incremental scan visited %d keys", seen)
	}

	// One add: only that key's stripe rescans.
	s.AddUint64(keys[0], 42)
	var got []uint64
	s.ForEachDirty(cut2, func(k uint64, _ Counter) bool { got = append(got, k); return true })
	if len(got) == 0 || len(got) >= s.Len() {
		t.Fatalf("single-add incremental scan visited %d of %d keys", len(got), s.Len())
	}
	found := false
	for _, k := range got {
		if k == keys[0] {
			found = true
		}
	}
	if !found {
		t.Fatalf("incremental scan missed the touched key %d", keys[0])
	}

	// A racing consumer's cut (MarshalStripes advances the shared
	// generation) must not wipe this scanner's dirt: stripes touched
	// before OUR next scan still satisfy modGen >= our old cut.
	s.AddUint64(keys[1], 7)
	if _, _, err := s.MarshalStripes(s.Generation() + 1); err != nil {
		t.Fatal(err)
	}
	seen = 0
	s.ForEachDirty(cut2, func(uint64, Counter) bool { seen++; return true })
	if seen == 0 {
		t.Fatal("another consumer's cut hid this scanner's dirty stripes")
	}
}

// TestStoreForEachDirtyEarlyStop: fn returning false stops the scan; the
// unvisited stripes keep their stamps, so the NEXT scan from the same
// pre-stop cut still sees them.
func TestStoreForEachDirtyEarlyStop(t *testing.T) {
	spec := MustSpec("sbitmap:n=1e4,eps=0.1")
	s, _ := NewStore[uint64](spec, WithStripes(16))
	for i := uint64(0); i < 200; i++ {
		s.AddUint64(i, i)
	}
	seen := 0
	s.ForEachDirty(0, func(uint64, Counter) bool { seen++; return seen < 10 })
	if seen != 10 {
		t.Fatalf("early-stopped scan visited %d keys, want 10", seen)
	}
	seen = 0
	s.ForEachDirty(0, func(uint64, Counter) bool { seen++; return true })
	if seen != s.Len() {
		t.Fatalf("rescan from 0 visited %d keys, want %d", seen, s.Len())
	}
}

// TestStoreEstimateBatch: the batched point read answers exactly what
// per-key Estimate answers, across hits, misses, and duplicates, for both
// key types.
func TestStoreEstimateBatch(t *testing.T) {
	t.Run("uint64", func(t *testing.T) {
		spec := MustSpec("sbitmap:n=1e4,eps=0.1")
		s, _ := NewStore[uint64](spec, WithStripes(16))
		keys, items := keyedWorkload(100, 5000, 21)
		s.AddBatch64(keys, items)

		probe := []uint64{keys[0], 1 << 60, keys[1], keys[0], 1<<60 + 1}
		out := make([]float64, len(probe))
		ok := make([]bool, len(probe))
		s.EstimateBatch(probe, out, ok)
		for i, k := range probe {
			wantEst, wantOK := s.Estimate(k)
			if ok[i] != wantOK || out[i] != wantEst {
				t.Fatalf("probe[%d]=%d: got (%v, %v), want (%v, %v)", i, k, out[i], ok[i], wantEst, wantOK)
			}
		}
	})
	t.Run("string", func(t *testing.T) {
		spec := MustSpec("hll:mbits=1536")
		s, _ := NewStore[string](spec)
		for i := 0; i < 400; i++ {
			s.AddString(fmt.Sprintf("key-%d", i%30), fmt.Sprintf("item-%d", i))
		}
		probe := []string{"key-0", "no-such-key", "key-29", "key-0"}
		out := make([]float64, len(probe))
		ok := make([]bool, len(probe))
		s.EstimateBatch(probe, out, ok)
		for i, k := range probe {
			wantEst, wantOK := s.Estimate(k)
			if ok[i] != wantOK || out[i] != wantEst {
				t.Fatalf("probe[%d]=%q: got (%v, %v), want (%v, %v)", i, k, out[i], ok[i], wantEst, wantOK)
			}
		}
	})
	t.Run("length mismatch panics", func(t *testing.T) {
		spec := MustSpec("sbitmap:n=1e4,eps=0.1")
		s, _ := NewStore[uint64](spec)
		defer func() {
			if recover() == nil {
				t.Fatal("mismatched slice lengths did not panic")
			}
		}()
		s.EstimateBatch(make([]uint64, 3), make([]float64, 2), make([]bool, 3))
	})
	t.Run("empty batch", func(t *testing.T) {
		spec := MustSpec("sbitmap:n=1e4,eps=0.1")
		s, _ := NewStore[uint64](spec)
		s.EstimateBatch(nil, nil, nil) // must not panic
	})
}
