// Command flowgen emits the synthetic network-flow workloads used by the
// Section 7 reproductions, for inspection or for piping into `distinct`.
//
// Usage:
//
//	flowgen -trace slammer -link 1 -counts          # per-minute flow counts
//	flowgen -trace slammer -link 0 -minute 42       # flow keys of one minute
//	flowgen -trace backbone -counts                 # 600-link snapshot
//	flowgen -trace backbone -link 7                 # keys of one link
//	flowgen -trace scan -scanners 20 -scan-rate 2000  # keyed scan workload
//
// Keys print one per line as 16-digit hex, so
//
//	flowgen -trace slammer -link 1 -minute 42 | distinct -algo all -n 1e6
//
// compares every sketch on a realistic duplicated stream.
//
// The scan trace is keyed (source, destination) traffic for the
// superspreader/port-scan detection pipeline: benign background sources
// with small fan-out, a borderline band, and -scanners injected sources
// whose distinct-destination counts sit in [scan-rate, 2·scan-rate].
// Records emit as NDJSON {"key":...,"item":...} lines ready for
// POST /v1/add on a sketchd, so
//
//	flowgen -trace scan -scanners 20 | curl -s --data-binary @- \
//	    -H 'Content-Type: application/x-ndjson' localhost:8287/v1/add
//
// feeds a server with a prefix rule installed and watches it fire. With
// -counts the ground truth prints instead: one "key spread scanner"
// line per source, for scoring a detector's precision and recall.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/netflow"
	"repro/internal/stream"
)

func main() {
	var (
		trace    = flag.String("trace", "slammer", "workload: slammer|backbone|scan")
		link     = flag.Int("link", 1, "link index (slammer: 0 or 1; backbone: 0..599)")
		minute   = flag.Int("minute", -1, "slammer minute to emit keys for (with -counts unset)")
		counts   = flag.Bool("counts", false, "emit true distinct counts instead of keys")
		seed     = flag.Uint64("seed", 1, "generator seed")
		scanners = flag.Int("scanners", 20, "scan trace: number of injected scanner sources")
		scanRate = flag.Int("scan-rate", 2000, "scan trace: scanner fan-out floor (spreads land in [rate, 2*rate])")
	)
	flag.Parse()

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	switch *trace {
	case "slammer":
		tr := netflow.Slammer(*link, *seed)
		if *counts {
			fmt.Fprintln(w, "# minute  true_flows")
			for i, c := range tr.Counts {
				fmt.Fprintf(w, "%d %d\n", i, c)
			}
			return
		}
		if *minute < 0 || *minute >= len(tr.Counts) {
			fmt.Fprintf(os.Stderr, "flowgen: -minute must be in [0, %d) when emitting keys\n", len(tr.Counts))
			os.Exit(1)
		}
		stream.ForEach(tr.IntervalStream(*minute), func(x uint64) {
			fmt.Fprintf(w, "%016x\n", x)
		})
	case "backbone":
		snapshot := netflow.BackboneSnapshot(600, *seed)
		if *counts {
			fmt.Fprintln(w, "# link  true_flows")
			for i, c := range snapshot {
				fmt.Fprintf(w, "%d %d\n", i, c)
			}
			return
		}
		if *link < 0 || *link >= len(snapshot) {
			fmt.Fprintf(os.Stderr, "flowgen: -link must be in [0, 600)\n")
			os.Exit(1)
		}
		stream.ForEach(netflow.LinkStream(snapshot[*link], *seed^uint64(*link)<<20), func(x uint64) {
			fmt.Fprintf(w, "%016x\n", x)
		})
	case "scan":
		if *scanners < 0 || *scanRate < 1 {
			fmt.Fprintf(os.Stderr, "flowgen: -scanners must be >= 0 and -scan-rate >= 1\n")
			os.Exit(1)
		}
		tr := stream.NewScanTrace(scanTraceConfig(*scanners, *scanRate, *seed))
		if *counts {
			fmt.Fprintln(w, "# key  true_spread  scanner")
			for k := 0; k < tr.NumKeys(); k++ {
				fmt.Fprintf(w, "%s %d %d\n", stream.KeyString(tr.Key(k)), tr.Spread(k), b2i(tr.IsScanner(k)))
			}
			return
		}
		stream.ForEachRecord(tr, func(key, item uint64) {
			fmt.Fprintf(w, "{\"key\":%q,\"item\":%q}\n", stream.KeyString(key), stream.KeyString(item))
		})
	default:
		fmt.Fprintf(os.Stderr, "flowgen: unknown trace %q (slammer|backbone|scan)\n", *trace)
		os.Exit(1)
	}
}

// scanTraceConfig shapes the scan workload from the two knobs the CLI
// exposes: -scanners sets the injected population, -scan-rate its
// fan-out floor, and the benign background and borderline band scale
// relative to the rate so a detection threshold around rate/2 is always
// measured against a band that straddles it.
func scanTraceConfig(scanners, rate int, seed uint64) stream.ScanTraceConfig {
	return stream.ScanTraceConfig{
		BackgroundKeys: 5000,
		BackgroundMax:  max(10, rate/20),
		Borderline:     50,
		BorderlineLo:   max(2, rate/4),
		BorderlineHi:   max(3, (rate*3)/4),
		Scanners:       scanners,
		ScannerLo:      rate,
		ScannerHi:      2 * rate,
		Dup:            1.5,
		Seed:           seed,
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
