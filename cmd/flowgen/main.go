// Command flowgen emits the synthetic network-flow workloads used by the
// Section 7 reproductions, for inspection or for piping into `distinct`.
//
// Usage:
//
//	flowgen -trace slammer -link 1 -counts          # per-minute flow counts
//	flowgen -trace slammer -link 0 -minute 42       # flow keys of one minute
//	flowgen -trace backbone -counts                 # 600-link snapshot
//	flowgen -trace backbone -link 7                 # keys of one link
//
// Keys print one per line as 16-digit hex, so
//
//	flowgen -trace slammer -link 1 -minute 42 | distinct -algo all -n 1e6
//
// compares every sketch on a realistic duplicated stream.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/netflow"
	"repro/internal/stream"
)

func main() {
	var (
		trace  = flag.String("trace", "slammer", "workload: slammer|backbone")
		link   = flag.Int("link", 1, "link index (slammer: 0 or 1; backbone: 0..599)")
		minute = flag.Int("minute", -1, "slammer minute to emit keys for (with -counts unset)")
		counts = flag.Bool("counts", false, "emit true distinct counts instead of keys")
		seed   = flag.Uint64("seed", 1, "generator seed")
	)
	flag.Parse()

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	switch *trace {
	case "slammer":
		tr := netflow.Slammer(*link, *seed)
		if *counts {
			fmt.Fprintln(w, "# minute  true_flows")
			for i, c := range tr.Counts {
				fmt.Fprintf(w, "%d %d\n", i, c)
			}
			return
		}
		if *minute < 0 || *minute >= len(tr.Counts) {
			fmt.Fprintf(os.Stderr, "flowgen: -minute must be in [0, %d) when emitting keys\n", len(tr.Counts))
			os.Exit(1)
		}
		stream.ForEach(tr.IntervalStream(*minute), func(x uint64) {
			fmt.Fprintf(w, "%016x\n", x)
		})
	case "backbone":
		snapshot := netflow.BackboneSnapshot(600, *seed)
		if *counts {
			fmt.Fprintln(w, "# link  true_flows")
			for i, c := range snapshot {
				fmt.Fprintf(w, "%d %d\n", i, c)
			}
			return
		}
		if *link < 0 || *link >= len(snapshot) {
			fmt.Fprintf(os.Stderr, "flowgen: -link must be in [0, 600)\n")
			os.Exit(1)
		}
		stream.ForEach(netflow.LinkStream(snapshot[*link], *seed^uint64(*link)<<20), func(x uint64) {
			fmt.Fprintf(w, "%016x\n", x)
		})
	default:
		fmt.Fprintf(os.Stderr, "flowgen: unknown trace %q (slammer|backbone)\n", *trace)
		os.Exit(1)
	}
}
