// Command sbdim is the S-bitmap dimensioning calculator: given any two of
// (N, m, ε) it derives the third from Equation (7) of the paper and prints
// the resulting configuration, including the sampling-rate schedule's key
// points and the memory a HyperLogLog would need for the same guarantee.
//
// Usage:
//
//	sbdim -n 1e6 -eps 0.01                  # memory needed for ±1% up to 1M
//	sbdim -n 1e6 -m 8000                    # error achievable with 8000 bits
//	sbdim -m 30000 -c 10000                 # range reachable with m bits at C
//	sbdim -spec "sbitmap:n=1e6,eps=0.01"    # same vocabulary as the library
//
// The output includes the canonical spec string for the solved
// configuration, ready to paste into distinct -spec, a config file, or
// sbitmap.ParseSpec.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	sbitmap "repro"
	"repro/internal/core"
	"repro/internal/hyperloglog"
)

func main() {
	var (
		n    = flag.Float64("n", 0, "cardinality upper bound N")
		m    = flag.Int("m", 0, "memory budget in bits")
		eps  = flag.Float64("eps", 0, "target RRMSE (e.g. 0.01)")
		c    = flag.Float64("c", 0, "accuracy parameter C (alternative to -eps)")
		spec = flag.String("spec", "", "sbitmap spec string (alternative to the numeric flags)")
	)
	flag.Parse()

	if *spec != "" {
		sp, err := sbitmap.ParseSpec(*spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sbdim: %v\n", err)
			os.Exit(1)
		}
		if sp.Kind != sbitmap.KindSBitmap {
			fmt.Fprintf(os.Stderr, "sbdim: -spec must name an sbitmap, got %s\n", sp.Kind)
			os.Exit(1)
		}
		*n, *m, *eps, *c = sp.N, sp.MemoryBits, sp.Eps, 0
	}

	cfg, err := solve(*n, *m, *eps, *c)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbdim: %v\n", err)
		fmt.Fprintln(os.Stderr, "provide two of: -n, -m, -eps (or -c), or a -spec")
		os.Exit(1)
	}

	fmt.Printf("S-bitmap configuration (Equation 7: m = C/2 + ln(1+2N/C)/ln(1+2/(C-1)))\n\n")
	fmt.Printf("  m        %d bits (%.1f KiB)\n", cfg.M(), float64(cfg.M())/8192)
	fmt.Printf("  N        %.6g\n", cfg.N())
	fmt.Printf("  C        %.4f\n", cfg.C())
	fmt.Printf("  epsilon  %.4f (%.2f%% RRMSE, scale-invariant over [1, N])\n", cfg.Epsilon(), 100*cfg.Epsilon())
	fmt.Printf("  r        %.8f\n", cfg.R())
	fmt.Printf("  k*       %d (truncation point m - C/2)\n", cfg.KMax())
	fmt.Printf("  aux      %d bytes of schedule state (closed form: rates and estimates computed on demand, no per-bucket tables)\n", cfg.AuxBytes())
	fmt.Printf("  spec     %s\n\n", sbitmap.Spec{Kind: sbitmap.KindSBitmap, N: cfg.N(), MemoryBits: cfg.M()})

	fmt.Printf("sampling-rate schedule p_k = m/(m+1-k)·(1+1/C)·r^k:\n")
	for _, k := range []int{1, cfg.KMax() / 4, cfg.KMax() / 2, 3 * cfg.KMax() / 4, cfg.KMax()} {
		if k < 1 {
			continue
		}
		fmt.Printf("  p_%-7d = %.6g   (estimate at fill %d: t = %.6g)\n", k, cfg.P(k), k, cfg.T(k))
	}

	if hll, err := hyperloglog.MemoryBitsFor(cfg.N(), cfg.Epsilon()); err == nil {
		ratio := float64(hll) / float64(cfg.M())
		verdict := "S-bitmap wins"
		if ratio < 1 {
			verdict = "HyperLogLog wins"
		}
		fmt.Printf("\nHyperLogLog at the same (N, ε): %d bits — ratio %.2f (%s)\n", hll, ratio, verdict)
	}
}

// solve builds a Config from whichever two parameters were provided.
func solve(n float64, m int, eps, c float64) (*core.Config, error) {
	if eps > 0 && c > 0 {
		return nil, fmt.Errorf("-eps and -c are aliases; provide one")
	}
	if c > 0 {
		eps = 0 // C takes priority below
	}
	switch {
	case n > 0 && m > 0 && eps == 0 && c == 0:
		return core.NewConfigMN(m, n)
	case n > 0 && eps > 0 && m == 0:
		return core.NewConfigNE(n, eps)
	case n > 0 && c > 0 && m == 0:
		return core.NewConfigNE(n, 1/math.Sqrt(c-1))
	case m > 0 && c > 0 && n == 0:
		return core.NewConfigMC(m, c)
	case m > 0 && eps > 0 && n == 0:
		return core.NewConfigMC(m, 1+1/(eps*eps))
	default:
		return nil, fmt.Errorf("need exactly two of -n, -m, -eps/-c (got n=%g m=%d eps=%g c=%g)", n, m, eps, c)
	}
}
