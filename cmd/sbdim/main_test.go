package main

import (
	"math"
	"testing"
)

func TestSolveCombinations(t *testing.T) {
	// (n, m) → C
	cfg, err := solve(1<<20, 4000, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cfg.C()-915.6) > 1 {
		t.Errorf("solve(n,m): C = %v, want ≈ 915.6", cfg.C())
	}
	// (n, eps) → m
	cfg, err = solve(1e6, 0, 0.01, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.M() < 25000 || cfg.M() > 35000 {
		t.Errorf("solve(n,eps): m = %d, want ≈ 31.5k", cfg.M())
	}
	// (n, C) → m; C = 1+eps^-2 must agree with the eps form.
	viaC, err := solve(1e6, 0, 0, 1+1/(0.01*0.01))
	if err != nil {
		t.Fatal(err)
	}
	if viaC.M() != cfg.M() {
		t.Errorf("solve via C gives m = %d, via eps m = %d", viaC.M(), cfg.M())
	}
	// (m, C) → N
	cfg, err = solve(0, 30000, 0, 9430)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.N() < 0.8e6 || cfg.N() > 1.3e6 {
		t.Errorf("solve(m,C): N = %g, want ≈ 1e6", cfg.N())
	}
	// (m, eps) → N
	cfg, err = solve(0, 30000, 0.0103, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.N() < 0.7e6 || cfg.N() > 1.5e6 {
		t.Errorf("solve(m,eps): N = %g, want ≈ 1e6", cfg.N())
	}
}

func TestSolveRejectsBadCombos(t *testing.T) {
	cases := []struct {
		name   string
		n      float64
		m      int
		eps, c float64
	}{
		{"nothing", 0, 0, 0, 0},
		{"only n", 1e6, 0, 0, 0},
		{"all three", 1e6, 4000, 0.01, 0},
		{"eps and c", 1e6, 0, 0.01, 100},
	}
	for _, tc := range cases {
		if _, err := solve(tc.n, tc.m, tc.eps, tc.c); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}
