package main

// The memory pseudo-experiment backs the paper's headline claim — "only
// about 30 kilobits of memory" for 1% error up to 10^6 — with measured
// process bytes: for every sketch in the zoo it reports the summary size
// (the paper's accounting), the analytic resident footprint
// (Counter.Footprint), the runtime-measured live heap bytes per sketch,
// and the construction cost. For the S-bitmap it additionally compares the
// closed-form schedule against the tabulated one it replaced, which is the
// tracked ≥100× auxiliary-bytes reduction.
// `sbench -run memory -json BENCH_memory.json` regenerates the repo's
// tracked BENCH_memory.json (absolute measured bytes are allocator- and
// platform-dependent; the analytic columns and the reduction ratio are the
// stable signal).

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	sbitmap "repro"
	"repro/internal/core"
)

const (
	memN       = 1e6  // dimensioning bound (the paper's headline config)
	memEps     = 0.01 // target RRMSE
	memReps    = 32   // live instances per measured-bytes sample
	memMinTime = 20 * time.Millisecond
)

type memResult struct {
	Sketch string `json:"sketch"`
	// SizeBits is the summary statistic (the paper's accounting).
	SizeBits int `json:"size_bits"`
	// FootprintBytes is the analytic resident footprint (Counter.Footprint).
	FootprintBytes int `json:"footprint_bytes"`
	// MeasuredBytes is live heap per instance measured via runtime.MemStats.
	MeasuredBytes float64 `json:"measured_bytes"`
	// ConstructNs is the wall time to construct one instance.
	ConstructNs float64 `json:"construct_ns"`
}

type memReport struct {
	Schema string `json:"schema"`
	Config struct {
		N   float64 `json:"n"`
		Eps float64 `json:"eps"`
	} `json:"config"`
	Results []memResult `json:"results"`
	// SBitmapAux quantifies the closed-form schedule win: auxiliary
	// (non-bitmap) resident bytes per sketch, closed form vs the tabulated
	// schedule the original implementation used.
	SBitmapAux struct {
		BitmapBytes        int     `json:"bitmap_bytes"`
		ClosedFormAuxBytes int     `json:"closed_form_aux_bytes"`
		TabulatedAuxBytes  int     `json:"tabulated_aux_bytes"`
		Reduction          float64 `json:"reduction"`
	} `json:"sbitmap_aux"`
}

// memSized is the slice of the Counter surface the memory experiment
// needs; the decorators (Windowed is not a Counter) satisfy it too.
type memSized interface {
	SizeBits() int
	Footprint() int
}

type memEntry struct {
	name string
	mk   func() (memSized, error)
}

// memZoo lists the measured configurations: every kind at the shared
// (N, ε) budget plus the production decorators, whose construction cost is
// the point of O(1) dimensioning (64 shards × rotation pairs).
func memZoo(seed uint64) []memEntry {
	var zoo []memEntry
	for _, kind := range sbitmap.Kinds() {
		spec := sbitmap.Spec{Kind: kind, N: memN, Eps: memEps, Seed: seed}
		zoo = append(zoo, memEntry{string(kind), func() (memSized, error) { return spec.New() }})
	}
	sbSpec := sbitmap.Spec{Kind: sbitmap.KindSBitmap, N: memN, Eps: memEps, Seed: seed}
	zoo = append(zoo,
		memEntry{"sharded64:sbitmap", func() (memSized, error) {
			return sbitmap.NewShardedSpec(64, sbSpec)
		}},
		memEntry{"windowed:sbitmap", func() (memSized, error) {
			return sbitmap.NewWindowedSpec(time.Minute, sbSpec, nil)
		}},
	)
	return zoo
}

// runMemory measures every zoo entry and prints a table; jsonPath != ""
// additionally writes the machine-readable report.
func runMemory(jsonPath string, seed uint64) error {
	report := memReport{Schema: "sbitmap-memory/v1"}
	report.Config.N = memN
	report.Config.Eps = memEps

	fmt.Printf("per-sketch memory and construction cost, n=%.0e eps=%g\n\n", float64(memN), float64(memEps))
	fmt.Printf("%-18s %12s %15s %15s %13s\n", "sketch", "size(bits)", "footprint(B)", "measured(B)", "construct(ns)")

	for _, entry := range memZoo(seed) {
		probe, err := entry.mk()
		if err != nil {
			return fmt.Errorf("memory %s: %w", entry.name, err)
		}
		measured, err := measureLiveBytes(func() (any, error) { return entry.mk() })
		if err != nil {
			return err
		}
		res := memResult{
			Sketch:         entry.name,
			SizeBits:       probe.SizeBits(),
			FootprintBytes: probe.Footprint(),
			MeasuredBytes:  measured,
			ConstructNs:    measureConstructNs(func() error { _, err := entry.mk(); return err }),
		}
		report.Results = append(report.Results, res)
		fmt.Printf("%-18s %12d %15d %15.0f %13.0f\n",
			res.Sketch, res.SizeBits, res.FootprintBytes, res.MeasuredBytes, res.ConstructNs)
	}

	// The tracked signal: auxiliary resident bytes of one S-bitmap under
	// the closed-form schedule vs the tabulated schedule it replaced.
	cfg, err := core.NewConfigNE(memN, memEps)
	if err != nil {
		return err
	}
	closed := core.NewSketch(cfg, seed)
	tabbed := core.NewSketch(core.TabulateConfig(cfg), seed)
	bitmapBytes := (cfg.M() + 7) / 8
	aux := &report.SBitmapAux
	aux.BitmapBytes = bitmapBytes
	aux.ClosedFormAuxBytes = closed.Footprint() - bitmapBytes
	// The tabulated datapoint reconstructs the original implementation's
	// full overhead: the Config rate/estimator tables (16·m bytes, carried
	// by TabulateConfig) PLUS the per-sketch acceptance-threshold table
	// (8·m bytes) that the cached register replaced — today's Sketch never
	// builds it, so it is added analytically.
	aux.TabulatedAuxBytes = tabbed.Footprint() - bitmapBytes + 8*cfg.M()
	aux.Reduction = float64(aux.TabulatedAuxBytes) / float64(aux.ClosedFormAuxBytes)
	fmt.Printf("\nS-bitmap auxiliary state beyond the %d-byte bitmap: %d B closed-form vs %d B tabulated (%.0fx reduction)\n",
		aux.BitmapBytes, aux.ClosedFormAuxBytes, aux.TabulatedAuxBytes, aux.Reduction)

	if jsonPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\n(json: %s)\n", jsonPath)
	}
	return nil
}

// measureLiveBytes returns the live heap bytes one constructed instance
// retains, averaged over memReps instances kept alive across a GC.
func measureLiveBytes(mk func() (any, error)) (float64, error) {
	keep := make([]any, memReps)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := range keep {
		c, err := mk()
		if err != nil {
			return 0, err
		}
		keep[i] = c
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	delta := float64(after.HeapAlloc) - float64(before.HeapAlloc)
	runtime.KeepAlive(keep)
	if delta < 0 {
		delta = 0
	}
	return delta / memReps, nil
}

// measureConstructNs times construction until memMinTime has elapsed and
// returns ns per instance.
func measureConstructNs(mk func() error) float64 {
	start := time.Now()
	n := 0
	for time.Since(start) < memMinTime {
		if err := mk(); err != nil {
			return 0
		}
		n++
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n)
}
