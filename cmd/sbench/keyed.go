package main

// The keyed pseudo-experiment measures the Store at the paper's headline
// scale — "millions of users": ≥10^6 keys, one tiny S-bitmap each, fed
// keyed record streams under two localities: "scattered" (round-robin
// across all keys — worst-case key locality, every batch touches ~batch
// distinct keys) and "clustered" (each key's records contiguous — the
// exporter-flush pattern, where batch grouping amortizes the per-key
// work). It reports cold ingest (every record may materialize a counter),
// warm ingest (steady state), per-record vs keyed-batch path, and the
// resident footprint per key. `sbench -run keyed -json BENCH_keyed.json`
// regenerates the repo's tracked BENCH_keyed.json (absolute rates are
// machine-dependent; the batch/per-item speedups and bytes/key are the
// stable signal).

import (
	"encoding"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"runtime"
	"time"

	sbitmap "repro"
	"repro/internal/stream"
	"repro/internal/xrand"
)

const (
	keyedKeys     = 1 << 20 // ≥ 1e6 distinct keys
	keyedSpreadLo = 1       // per-key distinct items, uniform in [lo, hi]
	keyedSpreadHi = 8
	keyedDup      = 1.5 // records per distinct item
	keyedBatch    = 4096
	keyedSpec     = "sbitmap:n=1e4,eps=0.1" // per-key sketch (tiny, as deployed)
)

type keyedResult struct {
	Locality      string  `json:"locality"` // "scattered" or "clustered"
	Path          string  `json:"path"`     // "peritem" or "batch"
	Phase         string  `json:"phase"`    // "cold" (first pass) or "warm" (steady state)
	RecordsPerSec float64 `json:"records_per_sec"`
}

type keyedReport struct {
	Schema string `json:"schema"`
	Config struct {
		Keys     int     `json:"keys"`
		Records  int     `json:"records"`
		Dup      float64 `json:"dup"`
		BatchLen int     `json:"batch_len"`
		Spec     string  `json:"spec"`
	} `json:"config"`
	Results []keyedResult `json:"results"`
	Alloc   struct {
		HeapColdPerSec float64 `json:"heap_cold_records_per_sec"`
		SlabColdPerSec float64 `json:"slab_cold_records_per_sec"`
		Speedup        float64 `json:"slab_speedup"`
		BitIdentical   bool    `json:"bit_identical"`
	} `json:"alloc"`
	Store struct {
		Keys           int     `json:"keys"`
		SizeBits       int     `json:"size_bits"`
		FootprintBytes int     `json:"footprint_bytes"`
		BytesPerKey    float64 `json:"bytes_per_key"`
		MeanAbsRelErr  float64 `json:"mean_abs_rel_err"` // sampled keys
	} `json:"store"`
}

// keyedSpreads draws the per-key ground-truth spreads.
func keyedSpreads(seed uint64) []int {
	r := xrand.New(seed ^ 0x5eeded)
	spreads := make([]int, keyedKeys)
	for i := range spreads {
		spreads[i] = keyedSpreadLo + r.Intn(keyedSpreadHi-keyedSpreadLo+1)
	}
	return spreads
}

// keyedPass drives one full pass of the workload into sink, in batches of
// keyedBatch records. locality "scattered" replays the KeyedSpread
// round-robin order; "clustered" emits each key's records contiguously
// (same keys, same per-key spreads, own item identities — ground truth is
// identical).
func keyedPass(records *stream.KeyedSpread, spreads []int, locality string, sink func(keys, items []uint64)) {
	kbuf := make([]uint64, keyedBatch)
	ibuf := make([]uint64, keyedBatch)
	if locality == "scattered" {
		records.Reset()
		stream.ForEachRecordBatch(records, kbuf, ibuf, sink)
		return
	}
	n := 0
	flush := func() {
		if n > 0 {
			sink(kbuf[:n], ibuf[:n])
			n = 0
		}
	}
	for k, spread := range spreads {
		key := records.Key(k)
		recs := int(float64(spread)*keyedDup + 0.5)
		if recs < spread {
			recs = spread
		}
		for i := 0; i < recs; i++ {
			if n == keyedBatch {
				flush()
			}
			kbuf[n] = key
			ibuf[n] = xrand.Mix64(key ^ (0xc1a5 + uint64(i%spread)))
			n++
		}
	}
	flush()
}

// keyedStateDigest folds every key's marshaled counter state into one
// order-independent digest (per-key FNV, combined by xor and sum), so two
// million-key stores can be compared bit-for-bit without holding both
// serialized states in memory.
func keyedStateDigest(store *sbitmap.Store[uint64]) (uint64, error) {
	var x, sum uint64
	var ferr error
	store.ForEach(func(k uint64, c sbitmap.Counter) bool {
		blob, err := c.(encoding.BinaryMarshaler).MarshalBinary()
		if err != nil {
			ferr = err
			return false
		}
		h := fnv.New64a()
		var kb [8]byte
		binary.LittleEndian.PutUint64(kb[:], k)
		h.Write(kb[:])
		h.Write(blob)
		d := h.Sum64()
		x ^= d
		sum += d
		return true
	})
	return x ^ (sum * 0x9e3779b97f4a7c15), ferr
}

// runKeyed measures keyed ingest at the million-key scale and prints a
// table; jsonPath != "" additionally writes the machine-readable report.
func runKeyed(jsonPath string, seed uint64) error {
	spec, err := sbitmap.ParseSpec(keyedSpec)
	if err != nil {
		return err
	}
	spec.Seed = seed
	spreads := keyedSpreads(seed)
	records := stream.NewKeyedSpread(spreads, keyedDup, seed)

	report := keyedReport{Schema: "sbitmap-keyed/v1"}
	report.Config.Keys = records.Keys()
	report.Config.Records = records.Records()
	report.Config.Dup = keyedDup
	report.Config.BatchLen = keyedBatch
	report.Config.Spec = spec.String()

	// Cold-path allocator cell, measured first while the heap is clean
	// (a retained million-key store inflates GC mark cost enough to bury
	// the allocator delta): the scattered cold pass (every record may
	// materialize a counter — the allocator-bound regime) with per-key
	// heap allocation (WithSlabAllocator(false)) vs the default per-stripe
	// slab carving. Digests of the full per-key counter state prove the
	// allocator changes layout, not bits.
	var coldRates [2]float64
	var digests [2]uint64
	var lens [2]int
	for i, opts := range [][]sbitmap.StoreOption{
		{sbitmap.WithSlabAllocator(false)},
		nil, // default: slab on
	} {
		runtime.GC()
		st, err := sbitmap.NewStore[uint64](spec, opts...)
		if err != nil {
			return err
		}
		start := time.Now()
		keyedPass(records, spreads, "scattered", func(keys, items []uint64) {
			st.AddBatch64(keys, items)
		})
		coldRates[i] = float64(records.Records()) / time.Since(start).Seconds()
		if digests[i], err = keyedStateDigest(st); err != nil {
			return err
		}
		lens[i] = st.Len()
	}
	report.Alloc.HeapColdPerSec = coldRates[0]
	report.Alloc.SlabColdPerSec = coldRates[1]
	report.Alloc.Speedup = coldRates[1] / coldRates[0]
	report.Alloc.BitIdentical = lens[0] == lens[1] && digests[0] == digests[1]
	if !report.Alloc.BitIdentical {
		return fmt.Errorf("keyed: slab-allocated store diverged from heap-allocated store (%d/%d keys)", lens[1], lens[0])
	}
	runtime.GC()

	fmt.Printf("keyed store ingest, %d keys, %d records, spec %s, batch=%d\n\n",
		records.Keys(), records.Records(), spec, keyedBatch)
	fmt.Printf("%-11s %-7s %14s %14s %8s\n", "locality", "phase", "per-item/s", "batch/s", "speedup")

	var scatteredBatchStore *sbitmap.Store[uint64]
	for _, locality := range []string{"scattered", "clustered"} {
		var rates [2][2]float64 // [path][phase], path 0 = peritem
		for pi, path := range []string{"peritem", "batch"} {
			store, err := sbitmap.NewStore[uint64](spec)
			if err != nil {
				return err
			}
			sink := func(keys, items []uint64) {
				if path == "batch" {
					store.AddBatch64(keys, items)
				} else {
					for i := range keys {
						store.AddUint64(keys[i], items[i])
					}
				}
			}
			for phi, phase := range []string{"cold", "warm"} {
				start := time.Now()
				keyedPass(records, spreads, locality, sink)
				rate := float64(records.Records()) / time.Since(start).Seconds()
				rates[pi][phi] = rate
				report.Results = append(report.Results, keyedResult{
					Locality: locality, Path: path, Phase: phase, RecordsPerSec: rate,
				})
			}
			if locality == "scattered" && path == "batch" {
				scatteredBatchStore = store
			}
		}
		for phi, phase := range []string{"cold", "warm"} {
			fmt.Printf("%-11s %-7s %14.3e %14.3e %7.2fx\n",
				locality, phase, rates[0][phi], rates[1][phi], rates[1][phi]/rates[0][phi])
		}
	}

	store := scatteredBatchStore
	report.Store.Keys = store.Len()
	report.Store.SizeBits = store.SizeBits()
	report.Store.FootprintBytes = store.Footprint()
	report.Store.BytesPerKey = float64(report.Store.FootprintBytes) / float64(report.Store.Keys)

	// Accuracy spot check over a deterministic key sample: per-key sketches
	// at eps=0.1 should sit well inside ±35% at these tiny spreads.
	var absErr float64
	const sample = 2000
	for i := 0; i < sample; i++ {
		k := i * (keyedKeys / sample)
		est, ok := store.Estimate(records.Key(k))
		if !ok {
			return fmt.Errorf("keyed: key %d missing after ingest", k)
		}
		absErr += math.Abs(est/float64(spreads[k]) - 1)
	}
	report.Store.MeanAbsRelErr = absErr / sample

	fmt.Printf("\nstore: %d keys, %d sketch bits, %.1f B/key resident, mean |rel err| %.1f%% (%d-key sample)\n",
		report.Store.Keys, report.Store.SizeBits, report.Store.BytesPerKey,
		100*report.Store.MeanAbsRelErr, sample)

	fmt.Printf("cold-path allocator (scattered cold, batch): heap %.3e/s, slab %.3e/s (%.2fx), state bit-identical\n",
		coldRates[0], coldRates[1], report.Alloc.Speedup)

	if jsonPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("(json: %s)\n", jsonPath)
	}
	return nil
}
