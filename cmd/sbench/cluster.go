package main

// The cluster pseudo-experiment measures cluster mode end to end: the
// same workload BENCH_server.json pushes through one sketchd goes
// through a real 3-node loopback cluster via cluster.Client —
// partitioned binary-frame ingest (each batch split by ring owner,
// sub-frames shipped concurrently), then scatter-gather queries
// (owner-routed estimates, k-way-merged top-k, summed stats). A
// single-node frame pass runs first so the report carries the
// partitioning overhead ratio directly; the cluster pass is verified
// bit-identical to a local twin Store over every key, and a peer kill
// must yield a typed partial response. `sbench -run cluster -json
// BENCH_cluster.json` regenerates the repo's tracked BENCH_cluster.json
// (compare against BENCH_server.json: same workload, same spec).

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"time"

	sbitmap "repro"
	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/xrand"
)

const (
	clusterNodes   = 3
	clusterQueries = 2_000
)

type clusterNodeReport struct {
	Peer string `json:"peer"`
	Keys int    `json:"keys"`
}

type clusterReport struct {
	Schema string `json:"schema"`
	Config struct {
		Nodes    int    `json:"nodes"`
		Keys     int    `json:"keys"`
		Records  int    `json:"records"`
		BatchLen int    `json:"batch_len"`
		Spec     string `json:"spec"`
	} `json:"config"`
	Ingest []serverResult `json:"ingest"` // mode "frame1" (single node) vs "frame3" (cluster)
	Query  struct {
		Count    int     `json:"count"`
		MeanUs   float64 `json:"mean_us"`
		P50Us    float64 `json:"p50_us"`
		P99Us    float64 `json:"p99_us"`
		PerSec   float64 `json:"queries_per_sec"`
		TopK     int     `json:"topk_k"`
		TopKUs   float64 `json:"topk_us"`
		StatsUs  float64 `json:"stats_us"`
		Checked  int     `json:"verified_keys"`
		Verified bool    `json:"cluster_bit_identical"`
	} `json:"query"`
	Nodes    []clusterNodeReport `json:"nodes"`
	Degraded struct {
		Exercised   bool     `json:"exercised"`
		Partial     bool     `json:"partial"`
		Unreachable []string `json:"unreachable"`
	} `json:"degraded"`
}

// runCluster measures a 3-node loopback cluster and prints a table;
// jsonPath != "" additionally writes the machine-readable report.
func runCluster(jsonPath string, seed uint64) error {
	spec, err := sbitmap.ParseSpec(serverSpec)
	if err != nil {
		return err
	}
	spec.Seed = seed
	keys, items, _ := serverWorkload(seed)
	ctx := context.Background()

	report := clusterReport{Schema: "sbitmap-cluster/v1"}
	report.Config.Nodes = clusterNodes
	report.Config.Keys = serverKeys
	report.Config.Records = len(items)
	report.Config.BatchLen = serverBatch
	report.Config.Spec = spec.String()

	fmt.Printf("cluster mode over loopback HTTP: %d nodes, %d keys, %d records, spec %s, batch=%d\n\n",
		clusterNodes, serverKeys, len(items), spec, serverBatch)
	fmt.Printf("%-8s %10s %10s %9s %14s\n", "mode", "records", "requests", "seconds", "records/s")

	// Baseline: the identical workload through ONE node (what
	// BENCH_server.json's frame row measures) so the partitioning ratio
	// is in-report, not cross-file.
	oneSrv, oneHTTP, oneBase, err := startServer(spec)
	if err != nil {
		return err
	}
	oneClient := server.NewClient(oneBase)
	start := time.Now()
	reqs := 0
	for i := 0; i < len(keys); i += serverBatch {
		end := min(i+serverBatch, len(keys))
		if _, err := oneClient.AddBatch64(ctx, keys[i:end], items[i:end]); err != nil {
			return err
		}
		reqs++
	}
	secs := time.Since(start).Seconds()
	report.Ingest = append(report.Ingest, serverResult{
		Mode: "frame1", Records: len(keys), Requests: reqs, Seconds: secs,
		RecordsPerSec: float64(len(keys)) / secs,
	})
	fmt.Printf("%-8s %10d %10d %9.2f %14.3e\n", "frame1", len(keys), reqs, secs, float64(len(keys))/secs)
	oneHTTP.Close()
	_ = oneSrv

	// The cluster: 3 nodes, one ring, partitioned ingest.
	srvs := make([]*server.Server, clusterNodes)
	https := make([]*http.Server, clusterNodes)
	peers := make([]string, clusterNodes)
	defer func() {
		for _, hs := range https {
			if hs != nil {
				hs.Close()
			}
		}
	}()
	for i := range srvs {
		if srvs[i], https[i], peers[i], err = startServer(spec); err != nil {
			return err
		}
	}
	cc, err := cluster.New(peers)
	if err != nil {
		return err
	}

	start = time.Now()
	reqs = 0
	for i := 0; i < len(keys); i += serverBatch {
		end := min(i+serverBatch, len(keys))
		res, err := cc.AddBatch64(ctx, keys[i:end], items[i:end])
		if err != nil {
			return err
		}
		if res.Partial {
			return fmt.Errorf("cluster: ingest degraded on a healthy cluster: %+v", res.Degraded)
		}
		reqs++ // one logical request; the client fans out per owner
	}
	secs = time.Since(start).Seconds()
	report.Ingest = append(report.Ingest, serverResult{
		Mode: "frame3", Records: len(keys), Requests: reqs, Seconds: secs,
		RecordsPerSec: float64(len(keys)) / secs,
	})
	fmt.Printf("%-8s %10d %10d %9.2f %14.3e\n", "frame3", len(keys), reqs, secs, float64(len(keys))/secs)

	// Correctness: every key's clustered estimate must be bit-identical
	// to a local twin Store fed the same records. Ownership is resolved
	// through the ring and checked against the owning node's store
	// in-process (the HTTP surface is sampled by the latency pass below).
	twin, err := sbitmap.NewStore[string](spec)
	if err != nil {
		return err
	}
	for i := 0; i < len(keys); i += serverBatch {
		end := min(i+serverBatch, len(keys))
		twin.AddBatch64(keys[i:end], items[i:end])
	}
	ring := cc.Ring()
	checked := 0
	identical := true
	twin.ForEach(func(key string, c sbitmap.Counter) bool {
		got, ok := srvs[ring.Owner(key)].Store().Estimate(key)
		if !ok || got != c.Estimate() {
			identical = false
			return false
		}
		checked++
		return true
	})
	if !identical {
		return fmt.Errorf("cluster: partitioned estimates differ from a local twin store")
	}
	report.Query.Checked = checked
	report.Query.Verified = identical
	totalKeys := 0
	for i, s := range srvs {
		n := s.Store().Len()
		totalKeys += n
		report.Nodes = append(report.Nodes, clusterNodeReport{Peer: peers[i], Keys: n})
	}
	if totalKeys != twin.Len() {
		return fmt.Errorf("cluster: nodes hold %d keys total, twin %d", totalKeys, twin.Len())
	}

	// Scatter-gather query latency over the cluster client.
	lat := make([]float64, clusterQueries)
	r := xrand.New(seed ^ 0x9e77)
	qStart := time.Now()
	for i := range lat {
		key := fmt.Sprintf("user-%06x", r.Intn(serverKeys))
		t0 := time.Now()
		if _, ok, err := cc.Estimate(ctx, key); err != nil || !ok {
			return fmt.Errorf("cluster: query %s: ok=%v err=%v", key, ok, err)
		}
		lat[i] = float64(time.Since(t0).Microseconds())
	}
	qSecs := time.Since(qStart).Seconds()
	sort.Float64s(lat)
	mean := 0.0
	for _, v := range lat {
		mean += v
	}
	mean /= float64(len(lat))
	report.Query.Count = clusterQueries
	report.Query.MeanUs = mean
	report.Query.P50Us = lat[len(lat)/2]
	report.Query.P99Us = lat[len(lat)*99/100]
	report.Query.PerSec = float64(clusterQueries) / qSecs

	const topK = 10
	t0 := time.Now()
	tk, err := cc.TopK(ctx, topK)
	if err != nil {
		return err
	}
	report.Query.TopK = topK
	report.Query.TopKUs = float64(time.Since(t0).Microseconds())
	if tk.Partial || len(tk.Top) != topK {
		return fmt.Errorf("cluster: topk returned %d entries, partial=%v", len(tk.Top), tk.Partial)
	}
	t0 = time.Now()
	if _, err := cc.Stats(ctx); err != nil {
		return err
	}
	report.Query.StatsUs = float64(time.Since(t0).Microseconds())

	// Degraded path: kill one node, a scatter-gather query must come back
	// partial (typed, no error) naming the dead peer.
	https[1].Close()
	https[1] = nil
	dtk, err := cc.TopK(ctx, topK)
	if err != nil {
		return fmt.Errorf("cluster: topk with a dead peer errored instead of degrading: %w", err)
	}
	report.Degraded.Exercised = true
	report.Degraded.Partial = dtk.Partial
	report.Degraded.Unreachable = dtk.Unreachable
	if !dtk.Partial || len(dtk.Unreachable) != 1 || dtk.Unreachable[0] != peers[1] {
		return fmt.Errorf("cluster: degraded topk response: partial=%v unreachable=%v", dtk.Partial, dtk.Unreachable)
	}

	frame1 := report.Ingest[0].RecordsPerSec
	frame3 := report.Ingest[1].RecordsPerSec
	fmt.Printf("\nqueries (owner-routed): %d estimates, mean %.0f µs, p50 %.0f µs, p99 %.0f µs (%.3e/s); topk(%d) %.0f µs, stats %.0f µs\n",
		clusterQueries, mean, report.Query.P50Us, report.Query.P99Us, report.Query.PerSec, topK, report.Query.TopKUs, report.Query.StatsUs)
	fmt.Printf("partition balance:")
	for _, n := range report.Nodes {
		fmt.Printf(" %d", n.Keys)
	}
	fmt.Printf(" keys/node; cluster ingest %.2fx single-node (%.3e vs %.3e rec/s)\n",
		frame3/frame1, frame3, frame1)
	fmt.Printf("verified: %d keys bit-identical to local twin; peer-kill topk partial=%v unreachable=%v\n",
		checked, dtk.Partial, dtk.Unreachable)

	if jsonPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("(json: %s)\n", jsonPath)
	}
	return nil
}
