package main

// The window pseudo-experiment measures the sliding-window subsystem:
// per-key sub-window rings (windowed(width=1m,ring=5)) under timestamped
// keyed ingest. It reports steady-state in-window ingest vs the
// watermark-advancing passes that rotate every key's ring (the O(1)
// reset-in-place path), merge-on-query latency for /v1/estimate?window=
// spans against a plain unwindowed store's estimate, the per-key
// resident footprint at ring=5, and an end-to-end loopback check: a real
// HTTP server fed version-2 (timestamped) frames across 2^16 keys must
// answer every ?window=5m query bit-identically to a single-process twin
// ring, before and after a checkpoint + WAL-tail restart. `sbench -run
// window -json BENCH_window.json` regenerates the repo's tracked
// BENCH_window.json (absolute rates are machine-dependent; the
// rotation/in-window ratio, query-latency ratio, bytes/key, and the two
// bit-identical booleans are the stable signal).

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	sbitmap "repro"
	"repro/internal/server"
	"repro/internal/xrand"
)

const (
	windowKeys      = 1 << 16 // the acceptance scale: 65536 keys
	windowBatch     = 4096
	windowSpecStr   = "hll:mbits=512/windowed(width=1m,ring=5)"
	windowWidth     = time.Minute
	windowSample    = 4096 // keys timed per query-latency cell
	windowQuerySpan = 5 * time.Minute
)

type windowReport struct {
	Schema string `json:"schema"`
	Config struct {
		Keys     int    `json:"keys"`
		BatchLen int    `json:"batch_len"`
		Spec     string `json:"spec"`
		Width    string `json:"width"`
		Ring     int    `json:"ring"`
	} `json:"config"`
	Ingest struct {
		InWindowPerSec  float64 `json:"in_window_records_per_sec"` // warm, watermark steady
		RotatingPerSec  float64 `json:"rotating_records_per_sec"`  // every pass advances the watermark
		RotationsPerSec float64 `json:"ring_rotations_per_sec"`    // key-slot resets during the rotating passes
		RotationRatio   float64 `json:"rotating_vs_in_window_ratio"`
	} `json:"ingest"`
	Query struct {
		SampleKeys         int     `json:"sample_keys"`
		Window5mNanos      float64 `json:"window_5m_ns"`      // merge-on-query, 5 sub-windows
		Window1mNanos      float64 `json:"window_1m_ns"`      // single-sub-window fast path
		PlainEstimateNanos float64 `json:"plain_estimate_ns"` // unwindowed store baseline
		MergeOverPlain     float64 `json:"window_5m_vs_plain_ratio"`
	} `json:"query"`
	Store struct {
		Keys             int     `json:"keys"`
		FootprintBytes   int     `json:"footprint_bytes"`
		BytesPerKey      float64 `json:"bytes_per_key"`
		PlainBytesPerKey float64 `json:"plain_bytes_per_key"`
		RingCostMultiple float64 `json:"ring_cost_multiple"`
	} `json:"store"`
	Server struct {
		VerifiedKeys        int  `json:"verified_keys"`
		TwinBitIdentical    bool `json:"twin_bit_identical"`
		RestartBitIdentical bool `json:"restart_bit_identical"`
	} `json:"server"`
}

// windowKeyNames builds the key universe once.
func windowKeyNames() []string {
	keys := make([]string, windowKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%05x", i)
	}
	return keys
}

// windowAt is the record timestamp landing in sub-window widx.
func windowAt(widx int64) time.Time {
	return time.Unix(0, widx*int64(windowWidth)+int64(windowWidth)/2)
}

// windowPass feeds one full pass over the key space into sink, every
// batch stamped into sub-window widx, item identities salted by pass.
func windowPass(keys []string, widx int64, pass uint64, sink func(ts time.Time, k []string, it []uint64)) {
	items := make([]uint64, windowBatch)
	ts := windowAt(widx)
	for off := 0; off < len(keys); off += windowBatch {
		end := min(off+windowBatch, len(keys))
		for i := off; i < end; i++ {
			// A small per-key item universe so duplicates occur.
			items[i-off] = xrand.Mix64(uint64(i)<<8 | (pass+uint64(widx))%6)
		}
		sink(ts, keys[off:end], items[:end-off])
	}
}

// runWindow measures the sliding-window subsystem and prints a table;
// jsonPath != "" additionally writes the machine-readable report.
func runWindow(jsonPath string, seed uint64) error {
	spec, err := sbitmap.ParseSpec(windowSpecStr)
	if err != nil {
		return err
	}
	spec.Seed = seed
	keys := windowKeyNames()

	report := windowReport{Schema: "sbitmap-window/v1"}
	report.Config.Keys = windowKeys
	report.Config.BatchLen = windowBatch
	report.Config.Spec = spec.String()
	report.Config.Width = spec.Window.String()
	report.Config.Ring = spec.Ring

	fmt.Printf("sliding-window store, %d keys, spec %s, batch=%d\n\n", windowKeys, spec, windowBatch)

	st, err := sbitmap.NewStore[string](spec)
	if err != nil {
		return err
	}
	ingest := func(ts time.Time, k []string, it []uint64) { st.AddBatch64At(ts, k, it) }

	// In-window ingest: one cold pass materializes rings and counters,
	// then warm passes hit the watermark sub-window with no rotation.
	const base = int64(1000)
	windowPass(keys, base, 0, ingest)
	start := time.Now()
	const warmPasses = 3
	for p := uint64(1); p <= warmPasses; p++ {
		windowPass(keys, base, p, ingest)
	}
	warmRecs := warmPasses * windowKeys
	report.Ingest.InWindowPerSec = float64(warmRecs) / time.Since(start).Seconds()

	// Rotating ingest: each pass lands in the next sub-window, so every
	// key's ring rotates (Reset-in-place) exactly once per pass.
	const rotPasses = 5
	start = time.Now()
	for p := 1; p <= rotPasses; p++ {
		windowPass(keys, base+int64(p), uint64(p), ingest)
	}
	rotSecs := time.Since(start).Seconds()
	report.Ingest.RotatingPerSec = float64(rotPasses*windowKeys) / rotSecs
	report.Ingest.RotationsPerSec = float64(rotPasses*windowKeys) / rotSecs
	report.Ingest.RotationRatio = report.Ingest.RotatingPerSec / report.Ingest.InWindowPerSec

	fmt.Printf("ingest: in-window %.3e rec/s, rotating %.3e rec/s (%.2fx, %.3e ring rotations/s)\n",
		report.Ingest.InWindowPerSec, report.Ingest.RotatingPerSec,
		report.Ingest.RotationRatio, report.Ingest.RotationsPerSec)

	// A plain unwindowed twin of the base kind, fed one pass, as the
	// query-latency and footprint baseline.
	plainSpec := spec
	plainSpec.Window, plainSpec.Ring = 0, 0
	plain, err := sbitmap.NewStore[string](plainSpec)
	if err != nil {
		return err
	}
	windowPass(keys, base, 0, func(_ time.Time, k []string, it []uint64) { plain.AddBatch64(k, it) })

	timeQueries := func(f func(key string)) float64 {
		start := time.Now()
		for i := 0; i < windowSample; i++ {
			f(keys[i*(windowKeys/windowSample)])
		}
		return float64(time.Since(start).Nanoseconds()) / windowSample
	}
	report.Query.SampleKeys = windowSample
	report.Query.Window5mNanos = timeQueries(func(k string) { st.EstimateWindow(k, windowQuerySpan) })
	report.Query.Window1mNanos = timeQueries(func(k string) { st.EstimateWindow(k, windowWidth) })
	report.Query.PlainEstimateNanos = timeQueries(func(k string) { plain.Estimate(k) })
	report.Query.MergeOverPlain = report.Query.Window5mNanos / report.Query.PlainEstimateNanos

	fmt.Printf("query: window=5m %.0f ns (merge of 5), window=1m %.0f ns, plain estimate %.0f ns (5m/plain %.1fx)\n",
		report.Query.Window5mNanos, report.Query.Window1mNanos,
		report.Query.PlainEstimateNanos, report.Query.MergeOverPlain)

	report.Store.Keys = st.Len()
	report.Store.FootprintBytes = st.Footprint()
	report.Store.BytesPerKey = float64(report.Store.FootprintBytes) / float64(st.Len())
	report.Store.PlainBytesPerKey = float64(plain.Footprint()) / float64(plain.Len())
	report.Store.RingCostMultiple = report.Store.BytesPerKey / report.Store.PlainBytesPerKey
	fmt.Printf("store: %d keys, %.1f B/key resident at ring=%d (plain %.1f B/key, %.2fx)\n",
		report.Store.Keys, report.Store.BytesPerKey, spec.Ring,
		report.Store.PlainBytesPerKey, report.Store.RingCostMultiple)

	// End-to-end: loopback HTTP server fed the same timestamped trace via
	// version-2 frames must answer every ?window=5m query bit-identically
	// to a twin ring, live and again after checkpoint + WAL tail + restart.
	tmp, err := os.MkdirTemp("", "sbench-window-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	cfg := server.Config{
		Spec:          spec,
		CheckpointDir: filepath.Join(tmp, "ckpt"),
		WALDir:        filepath.Join(tmp, "wal"),
	}
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	hs := httptest.NewServer(srv)
	client := server.NewClient(hs.URL)
	ctx := context.Background()
	twin, err := sbitmap.NewStore[string](spec)
	if err != nil {
		return err
	}
	var ingestErr error
	feed := func(ts time.Time, k []string, it []uint64) {
		if ingestErr == nil {
			_, ingestErr = client.AddBatch64At(ctx, ts, k, it)
		}
		twin.AddBatch64At(ts, k, it)
	}
	for p := 0; p <= 4; p++ { // sub-windows 2000..2004: a full ring
		windowPass(keys, 2000+int64(p), uint64(p), feed)
	}
	if ingestErr != nil {
		return ingestErr
	}

	verifyAll := func(c *server.Client) (int, bool, error) {
		var mismatches atomic.Int64
		var firstErr atomic.Value
		var wg sync.WaitGroup
		for w := 0; w < 16; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < windowKeys; i += 16 {
					got, ok, err := c.EstimateWindow(ctx, keys[i], windowQuerySpan)
					if err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
					want, wok, werr := twin.EstimateWindow(keys[i], windowQuerySpan)
					if werr != nil {
						firstErr.CompareAndSwap(nil, werr)
						return
					}
					if !ok || !wok || got.Estimate != want.Estimate || got.Windows != want.Windows ||
						got.WindowStartUnixNano != want.Start.UnixNano() ||
						got.WindowEndUnixNano != want.End.UnixNano() {
						mismatches.Add(1)
					}
				}
			}(w)
		}
		wg.Wait()
		if err, _ := firstErr.Load().(error); err != nil {
			return 0, false, err
		}
		return windowKeys, mismatches.Load() == 0, nil
	}
	checked, identical, err := verifyAll(client)
	if err != nil {
		return err
	}
	report.Server.VerifiedKeys = checked
	report.Server.TwinBitIdentical = identical
	fmt.Printf("server: %d keys verified against twin over ?window=5m, bit-identical: %v\n", checked, identical)
	if !identical {
		return fmt.Errorf("window: loopback server diverged from the twin ring")
	}

	// Checkpoint, then one more rotating pass that only the WAL holds,
	// then restart and re-verify everything.
	if _, err := client.Checkpoint(ctx); err != nil {
		return err
	}
	windowPass(keys, 2005, 9, feed)
	if ingestErr != nil {
		return ingestErr
	}
	hs.Close()
	start = time.Now()
	srv2, err := server.New(cfg)
	if err != nil {
		return err
	}
	recovery := time.Since(start)
	hs2 := httptest.NewServer(srv2)
	defer hs2.Close()
	_, identical, err = verifyAll(server.NewClient(hs2.URL))
	if err != nil {
		return err
	}
	report.Server.RestartBitIdentical = identical
	fmt.Printf("server: checkpoint + WAL tail + restart in %v, re-verified bit-identical: %v\n",
		recovery.Round(time.Millisecond), identical)
	if !identical {
		return fmt.Errorf("window: restarted server diverged from the twin ring")
	}

	if jsonPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("(json: %s)\n", jsonPath)
	}
	return nil
}
