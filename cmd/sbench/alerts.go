package main

// The alerts pseudo-experiment measures the standing-query subsystem on
// the paper's motivating detection task: superspreader / port-scan
// detection (Section 7's per-source spread monitoring turned into a
// continuous query). A synthetic scan trace with known ground truth —
// benign background sources, a borderline band straddling the detection
// threshold, and injected scanners — is ingested through a real loopback
// HTTP server carrying a prefix rule, with the engine ticked on a fixed
// record cadence. The detector's output (the set of keys that ever
// fired) is scored against the exact ground truth: precision and recall
// must both clear 0.95 or the bench exits non-zero — the gate is the
// acceptance criterion, not a printed suggestion. Alongside the gate it
// reports incremental vs full-scan tick latency (the dirty-stripe
// scan's payoff) and ingest throughput with the rule installed.
// `sbench -run alerts -json BENCH_alerts.json` regenerates the repo's
// tracked BENCH_alerts.json (absolute rates are machine-dependent;
// precision, recall, and the incremental/full ratio are the signal).

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"time"

	sbitmap "repro"
	"repro/internal/rules"
	"repro/internal/server"
	"repro/internal/stream"
)

const (
	alertsSpecStr   = "sbitmap:n=1e4,eps=0.03"
	alertsThreshold = 1000.0
	alertsBatch     = 4096
	alertsTickEvery = 16 // batches between engine ticks (~65k records)
	alertsGate      = 0.95
)

// alertsTraceConfig is the detection workload: the borderline band
// straddles the threshold (T=1000 inside [600, 1500]) so the score is
// measured where detection is hard; the scanners sit decisively above.
// With eps=0.03 the estimator's noise band around T is ±~3%, so only
// the handful of borderline keys within a few percent of T are coin
// flips — the gate has margin without being trivial.
func alertsTraceConfig(seed uint64) stream.ScanTraceConfig {
	return stream.ScanTraceConfig{
		BackgroundKeys: 16384,
		BackgroundMax:  200,
		Borderline:     40,
		BorderlineLo:   600,
		BorderlineHi:   1500,
		Scanners:       100,
		ScannerLo:      3000,
		ScannerHi:      6000,
		Dup:            1.2,
		Seed:           seed,
	}
}

type alertsReport struct {
	Schema string `json:"schema"`
	Config struct {
		Spec       string  `json:"spec"`
		Threshold  float64 `json:"threshold"`
		Background int     `json:"background_keys"`
		Borderline int     `json:"borderline_keys"`
		Scanners   int     `json:"scanners"`
		Records    int     `json:"records"`
		BatchLen   int     `json:"batch_len"`
		TickEvery  int     `json:"tick_every_batches"`
	} `json:"config"`
	Detection struct {
		TruePositives  int     `json:"true_positives"` // ground truth: keys with exact spread > T
		Detected       int     `json:"detected"`       // keys the rule ever fired on
		Correct        int     `json:"correct"`
		FalsePositives int     `json:"false_positives"`
		FalseNegatives int     `json:"false_negatives"`
		Precision      float64 `json:"precision"`
		Recall         float64 `json:"recall"`
		Gate           float64 `json:"gate"`
		Pass           bool    `json:"pass"`
	} `json:"detection"`
	Ticks struct {
		Count            int     `json:"count"`
		AvgIncrMicros    float64 `json:"avg_incremental_tick_micros"`
		AvgScannedKeys   float64 `json:"avg_scanned_keys"`
		FullScanMicros   float64 `json:"full_scan_tick_micros"`
		FullScanKeys     int     `json:"full_scan_keys"`
		IncrOverFull     float64 `json:"incremental_vs_full_ratio"`
		QuiescentMicros  float64 `json:"quiescent_tick_micros"`
		HotPathEvals     int64   `json:"hot_path_evals"`
		AlertsFired      int64   `json:"alerts_fired"`
		StreamSubscribed bool    `json:"stream_subscribed"`
		StreamAlerts     int     `json:"stream_alerts_seen"`
	} `json:"ticks"`
	Ingest struct {
		RecordsPerSec float64 `json:"records_per_sec"`
		Seconds       float64 `json:"seconds"`
	} `json:"ingest"`
}

// runAlerts runs the detection bench and prints the scorecard;
// jsonPath != "" additionally writes the machine-readable report. An
// error (non-zero exit) if precision or recall misses the gate.
func runAlerts(jsonPath string, seed uint64) error {
	spec, err := sbitmap.ParseSpec(alertsSpecStr)
	if err != nil {
		return err
	}
	spec.Seed = seed
	cfg := alertsTraceConfig(seed)
	tr := stream.NewScanTrace(cfg)

	report := alertsReport{Schema: "sbitmap-alerts/v1"}
	report.Config.Spec = spec.String()
	report.Config.Threshold = alertsThreshold
	report.Config.Background = cfg.BackgroundKeys
	report.Config.Borderline = cfg.Borderline
	report.Config.Scanners = cfg.Scanners
	report.Config.Records = tr.Records()
	report.Config.BatchLen = alertsBatch
	report.Config.TickEvery = alertsTickEvery

	fmt.Printf("superspreader detection: %d sources (%d background, %d borderline, %d scanners), %d records, spec %s, T=%.0f\n\n",
		tr.NumKeys(), cfg.BackgroundKeys, cfg.Borderline, cfg.Scanners, tr.Records(), spec, alertsThreshold)

	// A real loopback server: the rule installs over HTTP, ingest rides
	// binary frames through POST /v1/add, alerts read back through the
	// client. No eval timer — the bench ticks the engine itself on a
	// fixed record cadence, so the run is deterministic.
	srv, err := server.New(server.Config{Spec: spec, AlertRing: 4096})
	if err != nil {
		return err
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	client := server.NewClient(hs.URL)
	ctx := context.Background()

	if _, err := client.PutRule(ctx, rules.Spec{
		ID:        "superspreader",
		Type:      rules.TypePrefix,
		Threshold: alertsThreshold,
	}); err != nil {
		return err
	}

	// A live SSE consumer rides along, proving the stream surfaces the
	// same firings the ring records.
	streamSeen := 0
	streamDone := make(chan struct{})
	streamCtx, streamCancel := context.WithCancel(ctx)
	defer streamCancel()
	go func() {
		defer close(streamDone)
		client.StreamAlerts(streamCtx, 0, func(a rules.Alert) bool {
			if a.State == rules.StateFiring {
				streamSeen++
			}
			return true
		})
	}()

	keys := make([]string, 0, alertsBatch)
	items := make([]string, 0, alertsBatch)
	flush := func() error {
		if len(keys) == 0 {
			return nil
		}
		_, err := client.AddBatchString(ctx, keys, items)
		keys, items = keys[:0], items[:0]
		return err
	}

	var tickCount int
	var tickMicros, tickKeys float64
	batches := 0
	start := time.Now()
	var ingestErr error
	stream.ForEachRecord(tr, func(key, item uint64) {
		if ingestErr != nil {
			return
		}
		keys = append(keys, stream.KeyString(key))
		items = append(items, stream.KeyString(item))
		if len(keys) == alertsBatch {
			if ingestErr = flush(); ingestErr != nil {
				return
			}
			batches++
			if batches%alertsTickEvery == 0 {
				res := srv.Rules().Tick(time.Now())
				tickCount++
				tickMicros += float64(res.Elapsed.Microseconds())
				tickKeys += float64(res.Scanned)
			}
		}
	})
	if ingestErr != nil {
		return ingestErr
	}
	if err := flush(); err != nil {
		return err
	}
	// Final tick catches whatever the last partial interval dirtied.
	res := srv.Rules().Tick(time.Now())
	tickCount++
	tickMicros += float64(res.Elapsed.Microseconds())
	tickKeys += float64(res.Scanned)
	elapsed := time.Since(start)
	report.Ingest.Seconds = elapsed.Seconds()
	report.Ingest.RecordsPerSec = float64(tr.Records()) / elapsed.Seconds()
	report.Ticks.Count = tickCount
	report.Ticks.AvgIncrMicros = tickMicros / float64(tickCount)
	report.Ticks.AvgScannedKeys = tickKeys / float64(tickCount)

	// A quiescent tick (nothing dirtied since the last) is the standing
	// cost of watching an idle store.
	qres := srv.Rules().Tick(time.Now())
	report.Ticks.QuiescentMicros = float64(qres.Elapsed.Microseconds())

	// Full-scan baseline: installing a second scanning rule resets the
	// engine's generation cut, so the next tick walks every stripe — the
	// cost the incremental path avoids at every intermediate tick.
	if _, err := client.PutRule(ctx, rules.Spec{
		ID: "full-scan-probe", Type: rules.TypePrefix, Threshold: 1e12,
	}); err != nil {
		return err
	}
	fres := srv.Rules().Tick(time.Now())
	report.Ticks.FullScanMicros = float64(fres.Elapsed.Microseconds())
	report.Ticks.FullScanKeys = fres.Scanned
	if report.Ticks.FullScanMicros > 0 {
		report.Ticks.IncrOverFull = report.Ticks.AvgIncrMicros / report.Ticks.FullScanMicros
	}

	// Score the detector: the set of keys that ever fired vs the exact
	// ground truth. The alert ring (sized above the worst case) holds
	// every firing.
	alerts, err := client.Alerts(ctx, 0)
	if err != nil {
		return err
	}
	detected := make(map[string]bool)
	for _, a := range alerts {
		if a.Rule == "superspreader" && a.State == rules.StateFiring {
			detected[a.Key] = true
		}
	}
	truth := make(map[string]bool)
	for _, k := range tr.TruePositives(alertsThreshold) {
		truth[stream.KeyString(tr.Key(k))] = true
	}
	correct := 0
	for k := range detected {
		if truth[k] {
			correct++
		}
	}
	d := &report.Detection
	d.TruePositives = len(truth)
	d.Detected = len(detected)
	d.Correct = correct
	d.FalsePositives = len(detected) - correct
	d.FalseNegatives = len(truth) - correct
	if len(detected) > 0 {
		d.Precision = float64(correct) / float64(len(detected))
	}
	if len(truth) > 0 {
		d.Recall = float64(correct) / float64(len(truth))
	}
	d.Gate = alertsGate
	d.Pass = d.Precision >= alertsGate && d.Recall >= alertsGate

	streamCancel()
	<-streamDone
	report.Ticks.StreamSubscribed = true
	report.Ticks.StreamAlerts = streamSeen
	es := srv.Rules().Stats()
	report.Ticks.AlertsFired = es.AlertsFired
	report.Ticks.HotPathEvals = es.HotPathEvals

	fmt.Printf("ingest: %d records in %.2fs (%.3e rec/s) with the rule installed\n",
		tr.Records(), report.Ingest.Seconds, report.Ingest.RecordsPerSec)
	fmt.Printf("ticks: %d incremental, avg %.0f µs over %.0f dirty keys; full scan %.0f µs over %d keys (incr/full %.3f); quiescent %.0f µs\n",
		report.Ticks.Count, report.Ticks.AvgIncrMicros, report.Ticks.AvgScannedKeys,
		report.Ticks.FullScanMicros, report.Ticks.FullScanKeys, report.Ticks.IncrOverFull,
		report.Ticks.QuiescentMicros)
	fmt.Printf("stream: %d firing alerts delivered over SSE (%d recorded in the ring)\n",
		streamSeen, len(alerts))
	fmt.Printf("\ndetection vs ground truth (spread > %.0f):\n", alertsThreshold)
	fmt.Printf("  true positives %d, detected %d, correct %d, false+ %d, false- %d\n",
		d.TruePositives, d.Detected, d.Correct, d.FalsePositives, d.FalseNegatives)
	fmt.Printf("  precision %.4f, recall %.4f (gate %.2f): %s\n",
		d.Precision, d.Recall, d.Gate, map[bool]string{true: "PASS", false: "FAIL"}[d.Pass])

	if jsonPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("(json: %s)\n", jsonPath)
	}
	if !d.Pass {
		return fmt.Errorf("alerts: precision %.4f / recall %.4f below the %.2f gate", d.Precision, d.Recall, alertsGate)
	}
	return nil
}
