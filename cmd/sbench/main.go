// Command sbench regenerates the tables and figures of "Distinct Counting
// with a Self-Learning Bitmap" (Chen, Cao, Shepp & Nguyen, ICDE 2009).
//
// Usage:
//
//	sbench -list
//	sbench -run fig2,table3            # quick regeneration (seconds each)
//	sbench -run all -full              # paper-fidelity run (minutes)
//	sbench -run fig4 -budget 50000000  # explicit per-cell update budget
//
// Each experiment prints its regenerated tables, an ASCII rendering of the
// figure, and notes comparing the measured shape against the paper's
// published numbers. See EXPERIMENTS.md for a recorded full run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiment"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiment ids and exit")
		run     = flag.String("run", "", "comma-separated experiment ids, or 'all'")
		full    = flag.Bool("full", false, "paper-fidelity run (cell budget 5e7, up to 1000 replicates)")
		budget  = flag.Int("budget", 0, "override per-cell update budget (default 2e6; -full sets 5e7)")
		seed    = flag.Uint64("seed", 1, "base PRNG seed")
		workers = flag.Int("workers", 0, "worker goroutines (default GOMAXPROCS)")
		verbose = flag.Bool("v", false, "trace per-cell progress to stderr")
		csvDir  = flag.String("csv", "", "also write each regenerated table as CSV into this directory")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, id := range experiment.IDs() {
			fmt.Printf("  %-16s %s\n", id, experiment.Title(id))
		}
		if *run == "" && !*list {
			fmt.Println("\nrun with: sbench -run <id>[,<id>...] | -run all")
		}
		return
	}

	ids := strings.Split(*run, ",")
	if *run == "all" {
		ids = experiment.IDs()
	}

	o := experiment.Options{Seed: *seed, Workers: *workers}
	if *full {
		o.CellBudget = 50_000_000
	}
	if *budget > 0 {
		o.CellBudget = *budget
	}
	if *verbose {
		o.Trace = os.Stderr
	}

	failed := false
	for _, id := range ids {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		start := time.Now()
		res, err := experiment.Run(id, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sbench: %s: %v\n", id, err)
			failed = true
			continue
		}
		if err := res.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "sbench: %s: render: %v\n", id, err)
			failed = true
			continue
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "sbench: %v\n", err)
				os.Exit(1)
			}
			paths, err := res.WriteCSVs(func(name string) (io.WriteCloser, error) {
				return os.Create(filepath.Join(*csvDir, name))
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "sbench: %s: csv: %v\n", id, err)
				failed = true
				continue
			}
			fmt.Printf("(csv: %s)\n", strings.Join(paths, ", "))
		}
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}
