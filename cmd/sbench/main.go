// Command sbench regenerates the tables and figures of "Distinct Counting
// with a Self-Learning Bitmap" (Chen, Cao, Shepp & Nguyen, ICDE 2009).
//
// Usage:
//
//	sbench -list
//	sbench -run fig2,table3            # quick regeneration (seconds each)
//	sbench -run all -full              # paper-fidelity run (minutes)
//	sbench -run fig4 -budget 50000000  # explicit per-cell update budget
//
// Beyond the registered experiments, -compare runs an ad-hoc like-for-like
// accuracy study over any sketches named in the module's shared spec
// vocabulary (sbitmap.ParseSpec) — the Section 6 methodology applied to
// whatever configurations you are considering deploying:
//
//	sbench -compare "sbitmap:n=1e6,eps=0.01;hll:mbits=30000" -distinct 200000
//
// Each experiment prints its regenerated tables, an ASCII rendering of the
// figure, and notes comparing the measured shape against the paper's
// published numbers. See EXPERIMENTS.md for a recorded full run.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	sbitmap "repro"
	"repro/internal/experiment"
	"repro/internal/stream"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiment ids and exit")
		run      = flag.String("run", "", "comma-separated experiment ids, or 'all'")
		full     = flag.Bool("full", false, "paper-fidelity run (cell budget 5e7, up to 1000 replicates)")
		budget   = flag.Int("budget", 0, "override per-cell update budget (default 2e6; -full sets 5e7)")
		seed     = flag.Uint64("seed", 1, "base PRNG seed")
		workers  = flag.Int("workers", 0, "worker goroutines (default GOMAXPROCS)")
		verbose  = flag.Bool("v", false, "trace per-cell progress to stderr")
		csvDir   = flag.String("csv", "", "also write each regenerated table as CSV into this directory")
		compare  = flag.String("compare", "", "semicolon-separated sketch specs for an ad-hoc accuracy comparison")
		distinct = flag.Int("distinct", 100_000, "true distinct count for -compare")
		reps     = flag.Int("reps", 20, "replicates per spec for -compare")
		jsonOut  = flag.String("json", "", "with -run throughput/memory: also write the report as JSON to this file (e.g. BENCH_throughput.json)")
	)
	flag.Parse()

	if *compare != "" {
		if err := runCompare(*compare, *distinct, *reps, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "sbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *run == "throughput" {
		if err := runThroughput(*jsonOut, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "sbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *run == "memory" {
		if err := runMemory(*jsonOut, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "sbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *run == "keyed" {
		if err := runKeyed(*jsonOut, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "sbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *run == "server" {
		if err := runServer(*jsonOut, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "sbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *run == "cluster" {
		if err := runCluster(*jsonOut, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "sbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *run == "window" {
		if err := runWindow(*jsonOut, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "sbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *run == "alerts" {
		if err := runAlerts(*jsonOut, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "sbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, id := range experiment.IDs() {
			fmt.Printf("  %-16s %s\n", id, experiment.Title(id))
		}
		fmt.Printf("  %-16s %s\n", "throughput",
			"ingest throughput benchmark (items/sec per sketch × mode × key; -json writes BENCH_throughput.json)")
		fmt.Printf("  %-16s %s\n", "memory",
			"per-sketch memory + construction benchmark (bytes and ns across the zoo; -json writes BENCH_memory.json)")
		fmt.Printf("  %-16s %s\n", "keyed",
			"keyed Store ingest benchmark (1M keys × per-key S-bitmaps; -json writes BENCH_keyed.json)")
		fmt.Printf("  %-16s %s\n", "server",
			"counting-service benchmark (loopback HTTP ingest: per-item vs NDJSON vs binary frame, query latency; -json writes BENCH_server.json)")
		fmt.Printf("  %-16s %s\n", "cluster",
			"cluster-mode benchmark (3-node loopback ring: partitioned frame ingest vs single node, scatter-gather query latency; -json writes BENCH_cluster.json)")
		fmt.Printf("  %-16s %s\n", "window",
			"sliding-window benchmark (ring rotation cost, merge-on-query latency, per-key bytes at ring=5, loopback twin equivalence; -json writes BENCH_window.json)")
		fmt.Printf("  %-16s %s\n", "alerts",
			"superspreader detection benchmark (prefix rule over a scan trace with known ground truth; precision/recall hard-gated at 0.95, incremental vs full tick latency; -json writes BENCH_alerts.json)")
		if *run == "" && !*list {
			fmt.Println("\nrun with: sbench -run <id>[,<id>...] | -run all")
		}
		return
	}

	ids := strings.Split(*run, ",")
	if *run == "all" {
		ids = experiment.IDs()
	}

	o := experiment.Options{Seed: *seed, Workers: *workers}
	if *full {
		o.CellBudget = 50_000_000
	}
	if *budget > 0 {
		o.CellBudget = *budget
	}
	if *verbose {
		o.Trace = os.Stderr
	}

	failed := false
	for _, id := range ids {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		start := time.Now()
		res, err := experiment.Run(id, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sbench: %s: %v\n", id, err)
			failed = true
			continue
		}
		if err := res.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "sbench: %s: render: %v\n", id, err)
			failed = true
			continue
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "sbench: %v\n", err)
				os.Exit(1)
			}
			paths, err := res.WriteCSVs(func(name string) (io.WriteCloser, error) {
				return os.Create(filepath.Join(*csvDir, name))
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "sbench: %s: csv: %v\n", id, err)
				failed = true
				continue
			}
			fmt.Printf("(csv: %s)\n", strings.Join(paths, ", "))
		}
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}

// runCompare measures each spec's empirical RRMSE at one cardinality over
// replicated distinct streams — the paper's accuracy metric (Section 6.1)
// applied to user-chosen configurations through the public Spec API.
func runCompare(specList string, distinct, reps int, seed uint64) error {
	if distinct < 1 {
		return fmt.Errorf("-distinct must be ≥ 1")
	}
	if reps < 1 {
		return fmt.Errorf("-reps must be ≥ 1")
	}
	type row struct {
		spec  sbitmap.Spec
		rrmse float64
		bias  float64
		bits  int
	}
	var rows []row
	for _, s := range strings.Split(specList, ";") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		spec, err := sbitmap.ParseSpec(s)
		if err != nil {
			return err
		}
		var se, me float64
		bits := 0
		for rep := 0; rep < reps; rep++ {
			repSpec := spec
			repSpec.Seed = seed + uint64(rep)*0x9e3779b97f4a7c15
			c, err := repSpec.New()
			if err != nil {
				return fmt.Errorf("%s: %w", s, err)
			}
			st := stream.NewDistinct(distinct, seed+uint64(rep)*131+7)
			stream.ForEach(st, func(x uint64) { c.AddUint64(x) })
			d := c.Estimate()/float64(distinct) - 1
			se += d * d
			me += d
			bits = c.SizeBits()
		}
		rows = append(rows, row{
			spec:  spec,
			rrmse: math.Sqrt(se / float64(reps)),
			bias:  me / float64(reps),
			bits:  bits,
		})
	}
	if len(rows) == 0 {
		return fmt.Errorf("empty -compare")
	}
	fmt.Printf("like-for-like comparison at n = %d (%d replicates per spec)\n\n", distinct, reps)
	fmt.Printf("%-40s %10s %10s %12s\n", "spec", "RRMSE", "bias", "memory(bits)")
	for _, r := range rows {
		fmt.Printf("%-40s %9.2f%% %+9.2f%% %12d\n", r.spec, 100*r.rrmse, 100*r.bias, r.bits)
	}
	return nil
}
