package main

// The throughput pseudo-experiment backs the paper's Section 3 cost claim
// with measured ingest rates: items/sec for each comparison sketch, single
// vs 8-shard concurrent-safe deployment, uint64 vs string keys, per-item
// vs batch path. `sbench -run throughput -json BENCH_throughput.json`
// regenerates the repo's tracked BENCH_throughput.json so the perf
// trajectory is visible across changes (absolute numbers are
// machine-dependent; the batch/per-item speedup columns are the stable
// signal).

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	sbitmap "repro"
	"repro/internal/stream"
)

const (
	thrMBits   = 8000    // memory budget per sketch (Section 7.1 configuration)
	thrN       = 1e6     // dimensioning bound
	thrShards  = 8       // shard count of the concurrent deployment
	thrBatch   = 4096    // items per AddBatch call
	thrKeys64  = 1 << 18 // uint64 item universe per pass
	thrKeysStr = 1 << 16 // string item universe per pass
	thrMinTime = 80 * time.Millisecond
)

// thrSketches is the fixed measurement order (the paper's Section 6
// comparison set).
var thrSketches = []sbitmap.Kind{
	sbitmap.KindSBitmap, sbitmap.KindHLL, sbitmap.KindLogLog,
	sbitmap.KindFM, sbitmap.KindLinearCount, sbitmap.KindMRBitmap,
}

type thrResult struct {
	Sketch      string  `json:"sketch"`
	Mode        string  `json:"mode"` // "single" or "sharded8"
	Key         string  `json:"key"`  // "uint64" or "string"
	Path        string  `json:"path"` // "peritem" or "batch"
	ItemsPerSec float64 `json:"items_per_sec"`
}

type thrReport struct {
	Schema string `json:"schema"`
	Config struct {
		MemoryBits int     `json:"memory_bits"`
		N          float64 `json:"n"`
		Shards     int     `json:"shards"`
		BatchLen   int     `json:"batch_len"`
	} `json:"config"`
	Results []thrResult `json:"results"`
}

// runThroughput measures every (sketch, mode, key, path) cell and prints a
// table; jsonPath != "" additionally writes the machine-readable report.
func runThroughput(jsonPath string, seed uint64) error {
	items64 := make([]uint64, thrKeys64)
	st := stream.NewDistinct(thrKeys64, seed)
	for i := range items64 {
		items64[i], _ = st.Next()
	}
	itemsStr := make([]string, thrKeysStr)
	for i := range itemsStr {
		itemsStr[i] = fmt.Sprintf("flow-%016x", items64[i])
	}

	report := thrReport{Schema: "sbitmap-throughput/v1"}
	report.Config.MemoryBits = thrMBits
	report.Config.N = thrN
	report.Config.Shards = thrShards
	report.Config.BatchLen = thrBatch

	fmt.Printf("ingest throughput (items/sec), mbits=%d N=%.0e shards=%d batch=%d\n\n",
		thrMBits, thrN, thrShards, thrBatch)
	fmt.Printf("%-12s %-9s %-7s %14s %14s %8s\n", "sketch", "mode", "key", "per-item/s", "batch/s", "speedup")

	for _, kind := range thrSketches {
		spec := sbitmap.Spec{Kind: kind, N: thrN, MemoryBits: thrMBits, Seed: seed}
		for _, mode := range []string{"single", "sharded8"} {
			mk := func() (sbitmap.Counter, error) {
				if mode == "single" {
					return spec.New()
				}
				return sbitmap.NewShardedSpec(thrShards, spec)
			}
			for _, key := range []string{"uint64", "string"} {
				var rates [2]float64 // [peritem, batch]
				for pi, path := range []string{"peritem", "batch"} {
					c, err := mk()
					if err != nil {
						return fmt.Errorf("throughput %s/%s: %w", kind, mode, err)
					}
					var pass func()
					var per int
					switch {
					case key == "uint64" && path == "peritem":
						per = len(items64)
						pass = func() {
							for _, x := range items64 {
								c.AddUint64(x)
							}
						}
					case key == "uint64" && path == "batch":
						per = len(items64)
						pass = func() {
							for i := 0; i < len(items64); i += thrBatch {
								end := min(i+thrBatch, len(items64))
								sbitmap.AddBatch64(c, items64[i:end])
							}
						}
					case key == "string" && path == "peritem":
						per = len(itemsStr)
						pass = func() {
							for _, x := range itemsStr {
								c.AddString(x)
							}
						}
					default:
						per = len(itemsStr)
						pass = func() {
							for i := 0; i < len(itemsStr); i += thrBatch {
								end := min(i+thrBatch, len(itemsStr))
								sbitmap.AddBatchString(c, itemsStr[i:end])
							}
						}
					}
					rate := measureRate(per, pass)
					rates[pi] = rate
					report.Results = append(report.Results, thrResult{
						Sketch: string(kind), Mode: mode, Key: key, Path: path,
						ItemsPerSec: rate,
					})
				}
				fmt.Printf("%-12s %-9s %-7s %14.3e %14.3e %7.2fx\n",
					kind, mode, key, rates[0], rates[1], rates[1]/rates[0])
			}
		}
	}

	if jsonPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\n(json: %s)\n", jsonPath)
	}
	return nil
}

// measureRate runs pass (which ingests per items) until thrMinTime has
// elapsed, after one untimed warm-up pass that settles sketch state and
// scratch buffers, and returns items/sec.
func measureRate(per int, pass func()) float64 {
	pass()
	start := time.Now()
	items := 0
	for time.Since(start) < thrMinTime {
		pass()
		items += per
	}
	return float64(items) / time.Since(start).Seconds()
}
