package main

// The server pseudo-experiment measures the counting service end to end:
// a real sketchd serving layer (internal/server over net/http) on
// loopback, driven by the client library through its four ingest paths —
// one NDJSON record per request (the naive producer), NDJSON batches,
// the compact binary frame over HTTP (decoding straight onto
// Store.AddBatch64), and the same frames over the raw TCP wire listener
// (internal/wire: length-prefixed, pipelined, zero-copy decode) — plus
// query latency over /v1/estimate. The full-pass modes push ≥1M keyed
// updates each, and the frame and tcp passes are verified bit-identical
// against a local Store fed the same records, so the report doubles as
// an end-to-end correctness check. `sbench -run server -json
// BENCH_server.json` regenerates the repo's tracked BENCH_server.json
// (absolute rates are machine-dependent; the tcp-vs-frame-vs-NDJSON
// ratios and the per-request floor of the per-item mode are the stable
// signal).

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	sbitmap "repro"
	"repro/internal/server"
	"repro/internal/wal"
	"repro/internal/wire"
	"repro/internal/xrand"
)

const (
	serverKeys     = 1 << 17 // 131072 keys
	serverSpreadLo = 2       // per-key distinct items, uniform in [lo, hi]
	serverSpreadHi = 10
	serverDup      = 1.4 // records per distinct item
	serverBatch    = 8192
	serverSpec     = "sbitmap:n=1e4,eps=0.1" // per-key sketch (tiny, as deployed)

	serverPerItemRecords = 20_000 // per-item mode: one HTTP request per record
	serverQueries        = 2_000

	// Durability phase: enough stripes that "dirty stripes" is a
	// fine-grained fraction of the store, enough records that the full
	// checkpoint dwarfs the incremental ones.
	serverDurStripes = 1024
	serverDurRecords = 1 << 18 // 262144
)

type serverResult struct {
	Mode          string  `json:"mode"` // "peritem", "ndjson", "frame", or "tcp"
	Records       int     `json:"records"`
	Requests      int     `json:"requests"`
	Seconds       float64 `json:"seconds"`
	RecordsPerSec float64 `json:"records_per_sec"`
}

type serverReport struct {
	Schema string `json:"schema"`
	Config struct {
		Keys           int    `json:"keys"`
		Records        int    `json:"records"`
		BatchLen       int    `json:"batch_len"`
		Spec           string `json:"spec"`
		PerItemRecords int    `json:"peritem_records"`
	} `json:"config"`
	Results []serverResult `json:"results"`
	Query   struct {
		Count    int     `json:"count"`
		MeanUs   float64 `json:"mean_us"`
		P50Us    float64 `json:"p50_us"`
		P99Us    float64 `json:"p99_us"`
		PerSec   float64 `json:"queries_per_sec"`
		TopK     int     `json:"topk_k"`
		TopKUs   float64 `json:"topk_us"`
		StatsUs  float64 `json:"stats_us"`
		Checked  int     `json:"verified_keys"`
		Verified bool    `json:"frame_bit_identical"`
		TCPOK    bool    `json:"tcp_bit_identical"`
	} `json:"query"`
	Store struct {
		Keys           int `json:"keys"`
		FootprintBytes int `json:"footprint_bytes"`
	} `json:"store"`
	Durability struct {
		Stripes     int             `json:"stripes"`
		Records     int             `json:"records"`
		FsyncPolicy string          `json:"fsync_policy"`
		Checkpoints []durabilityRow `json:"checkpoints"`
		WALReplayed int             `json:"wal_records_replayed"`
		RecoveryMs  float64         `json:"recovery_ms"`
		Verified    bool            `json:"recovered_bit_identical"`
	} `json:"durability"`
}

// durabilityRow is one checkpoint pass: how many stripes ingest dirtied
// since the previous pass, and what the pass cost on disk and on the
// clock. The incremental rows' checkpoint_bytes scaling with
// dirty_stripes (not with the key population) is the claim under test.
type durabilityRow struct {
	Pass            string  `json:"pass"`
	DirtyStripes    int     `json:"dirty_stripes"`
	CheckpointBytes int     `json:"checkpoint_bytes"`
	CheckpointMs    float64 `json:"checkpoint_ms"`
}

// serverWorkload pre-generates the full record sequence: per-key spreads
// like the keyed bench, shuffled flat (worst-case key locality, every
// batch touches ~batch distinct keys).
func serverWorkload(seed uint64) (keys []string, items []uint64, spreads []int) {
	r := xrand.New(seed ^ 0x5e27e5)
	spreads = make([]int, serverKeys)
	names := make([]string, serverKeys)
	total := 0
	for k := range spreads {
		spreads[k] = serverSpreadLo + r.Intn(serverSpreadHi-serverSpreadLo+1)
		names[k] = fmt.Sprintf("user-%06x", k)
		recs := int(float64(spreads[k])*serverDup + 0.5)
		total += recs
	}
	keys = make([]string, 0, total)
	items = make([]uint64, 0, total)
	for k, spread := range spreads {
		recs := int(float64(spread)*serverDup + 0.5)
		for i := 0; i < recs; i++ {
			keys = append(keys, names[k])
			items = append(items, xrand.Mix64(uint64(k)<<16|uint64(i%spread)))
		}
	}
	// Fisher–Yates over the records, keeping (key, item) pairs together.
	for i := len(keys) - 1; i > 0; i-- {
		j := int(r.Uint64() % uint64(i+1))
		keys[i], keys[j] = keys[j], keys[i]
		items[i], items[j] = items[j], items[i]
	}
	return keys, items, spreads
}

// localTwin feeds the full workload into an in-process Store, the ground
// truth the served ingest paths must match bit for bit.
func localTwin(spec sbitmap.Spec, keys []string, items []uint64) (*sbitmap.Store[string], error) {
	local, err := sbitmap.NewStore[string](spec)
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(keys); i += serverBatch {
		end := min(i+serverBatch, len(keys))
		local.AddBatch64(keys[i:end], items[i:end])
	}
	return local, nil
}

// estimatesMatch compares every key's estimate in the local twin against
// the served store; any miss or mismatch means the transport corrupted
// state.
func estimatesMatch(local *sbitmap.Store[string], srv *server.Server) (checked int, identical bool) {
	identical = srv.Store().Len() == local.Len()
	local.ForEach(func(key string, c sbitmap.Counter) bool {
		got, ok := srv.Store().Estimate(key)
		if !ok || got != c.Estimate() {
			identical = false
			return false
		}
		checked++
		return true
	})
	return checked, identical
}

// startServer binds a fresh counting service to a loopback port.
func startServer(spec sbitmap.Spec) (*server.Server, *http.Server, string, error) {
	srv, err := server.New(server.Config{Spec: spec})
	if err != nil {
		return nil, nil, "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, "", err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln) // returns ErrServerClosed via hs.Close
	return srv, hs, "http://" + ln.Addr().String(), nil
}

// runServer measures the counting service over loopback and prints a
// table; jsonPath != "" additionally writes the machine-readable report.
func runServer(jsonPath string, seed uint64) error {
	spec, err := sbitmap.ParseSpec(serverSpec)
	if err != nil {
		return err
	}
	spec.Seed = seed
	keys, items, _ := serverWorkload(seed)
	ctx := context.Background()

	report := serverReport{Schema: "sbitmap-server/v2"}
	report.Config.Keys = serverKeys
	report.Config.Records = len(items)
	report.Config.BatchLen = serverBatch
	report.Config.Spec = spec.String()
	report.Config.PerItemRecords = serverPerItemRecords

	fmt.Printf("counting service over loopback HTTP, %d keys, %d records, spec %s, batch=%d\n\n",
		serverKeys, len(items), spec, serverBatch)
	fmt.Printf("%-8s %10s %10s %9s %14s\n", "mode", "records", "requests", "seconds", "records/s")

	itemStrs := make([]string, serverPerItemRecords)
	for i := range itemStrs {
		itemStrs[i] = fmt.Sprintf("%x", items[i])
	}

	var frameSrv *server.Server
	var frameClient *server.Client
	var frameHTTP *http.Server
	defer func() {
		if frameHTTP != nil {
			frameHTTP.Close()
		}
	}()
	// tcp runs before frame and releases its store as soon as it is
	// verified, so neither heavy mode is taxed by GC scans of the other's
	// live 40+ MB store (retention skews the slower-looking mode by ~2x).
	for _, mode := range []string{"peritem", "ndjson", "tcp", "frame"} {
		runtime.GC()
		srv, hs, base, err := startServer(spec)
		if err != nil {
			return err
		}
		client := server.NewClient(base)
		n, reqs := 0, 0
		start := time.Now()
		switch mode {
		case "peritem":
			// One record per request: the per-message floor a naive
			// producer pays (HTTP round trip + JSON decode per record).
			for i := 0; i < serverPerItemRecords; i++ {
				if _, err := client.AddNDJSON(ctx, keys[i:i+1], itemStrs[i:i+1]); err != nil {
					return err
				}
			}
			n, reqs = serverPerItemRecords, serverPerItemRecords
		case "ndjson":
			// Batched NDJSON: items rendered as hex strings (the format is
			// text); hashing differs from the frame path, throughput is
			// the comparison.
			buf := make([]string, serverBatch)
			for i := 0; i < len(keys); i += serverBatch {
				end := min(i+serverBatch, len(keys))
				strs := buf[:end-i]
				for j := range strs {
					strs[j] = fmt.Sprintf("%x", items[i+j])
				}
				if _, err := client.AddNDJSON(ctx, keys[i:end], strs); err != nil {
					return err
				}
				reqs++
			}
			n = len(keys)
		case "frame":
			for i := 0; i < len(keys); i += serverBatch {
				end := min(i+serverBatch, len(keys))
				if _, err := client.AddBatch64(ctx, keys[i:end], items[i:end]); err != nil {
					return err
				}
				reqs++
			}
			n = len(keys)
		case "tcp":
			// Raw wire transport: the same frames, but over a long-lived
			// TCP connection with pipelined sends and batched acks instead
			// of one HTTP request/response per frame.
			wln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			ws := wire.Serve(wln, srv)
			wc := wire.NewClient(wln.Addr().String())
			for i := 0; i < len(keys); i += serverBatch {
				end := min(i+serverBatch, len(keys))
				if err := wc.Send64(keys[i:end], items[i:end]); err != nil {
					return err
				}
				reqs++
			}
			if _, err := wc.Drain(); err != nil {
				return err
			}
			n = len(keys)
			wc.Close()
			ws.Close()
		}
		secs := time.Since(start).Seconds()
		report.Results = append(report.Results, serverResult{
			Mode: mode, Records: n, Requests: reqs, Seconds: secs,
			RecordsPerSec: float64(n) / secs,
		})
		fmt.Printf("%-8s %10d %10d %9.2f %14.3e\n", mode, n, reqs, secs, float64(n)/secs)
		switch mode {
		case "frame":
			frameSrv, frameClient, frameHTTP = srv, client, hs
		case "tcp":
			// Verify now so the store can be released before the frame
			// pass runs (see the retention note above the loop).
			local, err := localTwin(spec, keys, items)
			if err != nil {
				return err
			}
			if _, ok := estimatesMatch(local, srv); !ok {
				return fmt.Errorf("server: tcp-ingested estimates differ from a local store")
			}
			report.Query.TCPOK = true
			hs.Close()
		default:
			hs.Close()
		}
	}

	// Correctness: the frame pass must be bit-identical to a local Store
	// fed the same records — the service adds transport, not estimation.
	local, err := localTwin(spec, keys, items)
	if err != nil {
		return err
	}
	checked, identical := estimatesMatch(local, frameSrv)
	if !identical {
		return fmt.Errorf("server: frame-ingested estimates differ from a local store")
	}
	report.Query.Checked = checked
	report.Query.Verified = identical

	// Query latency over the served store (all keys live).
	lat := make([]float64, serverQueries)
	r := xrand.New(seed ^ 0x9e77)
	qStart := time.Now()
	for i := range lat {
		key := fmt.Sprintf("user-%06x", r.Intn(serverKeys))
		t0 := time.Now()
		if _, ok, err := frameClient.Estimate(ctx, key); err != nil || !ok {
			return fmt.Errorf("server: query %s: ok=%v err=%v", key, ok, err)
		}
		lat[i] = float64(time.Since(t0).Microseconds())
	}
	qSecs := time.Since(qStart).Seconds()
	sort.Float64s(lat)
	mean := 0.0
	for _, v := range lat {
		mean += v
	}
	mean /= float64(len(lat))
	report.Query.Count = serverQueries
	report.Query.MeanUs = mean
	report.Query.P50Us = lat[len(lat)/2]
	report.Query.P99Us = lat[len(lat)*99/100]
	report.Query.PerSec = float64(serverQueries) / qSecs

	const topK = 10
	t0 := time.Now()
	if _, err := frameClient.TopK(ctx, topK); err != nil {
		return err
	}
	report.Query.TopK = topK
	report.Query.TopKUs = float64(time.Since(t0).Microseconds())
	t0 = time.Now()
	stats, err := frameClient.Stats(ctx)
	if err != nil {
		return err
	}
	report.Query.StatsUs = float64(time.Since(t0).Microseconds())
	report.Store.Keys = stats.Keys
	report.Store.FootprintBytes = stats.FootprintBytes

	fmt.Printf("\nqueries: %d estimates, mean %.0f µs, p50 %.0f µs, p99 %.0f µs (%.3e/s); topk(%d) %.0f µs, stats %.0f µs\n",
		serverQueries, mean, report.Query.P50Us, report.Query.P99Us, report.Query.PerSec, topK, report.Query.TopKUs, report.Query.StatsUs)
	fmt.Printf("store: %d keys, %d bytes resident; frame and tcp ingest bit-identical to local store over %d keys\n",
		stats.Keys, stats.FootprintBytes, checked)

	// Release the heavy frame-pass store before the durability phase
	// stands up its own server.
	frameHTTP.Close()
	frameHTTP = nil
	frameSrv, frameClient, local = nil, nil, nil
	runtime.GC()
	if err := runServerDurability(&report, spec, keys, items); err != nil {
		return err
	}

	if jsonPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("(json: %s)\n", jsonPath)
	}
	return nil
}

// runServerDurability measures the durability chain: ingest through the
// WAL (fsync always — every frame durable before its ack), a full
// checkpoint, then incremental checkpoints after touching 1, 16, and 128
// keys (their cost must track the dirty stripes, not the 100k+ key
// population), then a crash — the server abandoned mid-flight, like a
// kill -9 — and a timed recovery that must be bit-identical to a twin
// store fed the same records.
func runServerDurability(report *serverReport, spec sbitmap.Spec, keys []string, items []uint64) error {
	base, err := os.MkdirTemp("", "sbench-durability-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(base)
	cfg := server.Config{
		Spec:          spec,
		Stripes:       serverDurStripes,
		CheckpointDir: filepath.Join(base, "ckpt"),
		WALDir:        filepath.Join(base, "wal"),
		FsyncPolicy:   wal.FsyncAlways,
	}
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	twin, err := sbitmap.NewStore[string](spec, sbitmap.WithStripes(serverDurStripes))
	if err != nil {
		return err
	}
	var f server.Frame
	defer f.Release()
	ingest := func(k []string, it []uint64) error {
		for i := 0; i < len(k); i += serverBatch {
			end := min(i+serverBatch, len(k))
			raw := server.AppendFrame64(nil, k[i:end], it[i:end])
			if err := f.DecodeBorrowed(raw); err != nil {
				return err
			}
			if _, err := srv.IngestFrame(raw, &f); err != nil {
				return err
			}
			twin.AddBatch64(k[i:end], it[i:end])
		}
		return nil
	}

	n := min(serverDurRecords, len(keys)/2)
	if err := ingest(keys[:n], items[:n]); err != nil {
		return err
	}

	report.Durability.Stripes = serverDurStripes
	report.Durability.FsyncPolicy = "always"
	checkpoint := func(pass string) error {
		info, err := srv.Checkpoint()
		if err != nil {
			return err
		}
		report.Durability.Checkpoints = append(report.Durability.Checkpoints, durabilityRow{
			Pass:            pass,
			DirtyStripes:    info.StripesWritten,
			CheckpointBytes: info.Bytes,
			CheckpointMs:    info.Seconds * 1e3,
		})
		return nil
	}
	if err := checkpoint("full"); err != nil {
		return err
	}

	// Incremental passes: touch a handful of keys, checkpoint, repeat. The
	// touched keys pick distinct counters spread over the stripe space.
	for _, dirty := range []int{1, 16, 128} {
		tk := make([]string, 0, dirty)
		ti := make([]uint64, 0, dirty)
		for j := 0; j < dirty; j++ {
			tk = append(tk, fmt.Sprintf("user-%06x", (j*977)%serverKeys))
			ti = append(ti, xrand.Mix64(0xd00d0000|uint64(dirty)<<16|uint64(j)))
		}
		if err := ingest(tk, ti); err != nil {
			return err
		}
		if err := checkpoint(fmt.Sprintf("dirty-%d", dirty)); err != nil {
			return err
		}
	}

	// A WAL tail past the newest checkpoint, then the crash: abandon the
	// server without Close (nothing flushes on a kill -9 either — fsync
	// always already made every ack durable) and time the cold start.
	tail := min(4*serverBatch, len(keys)-n)
	if err := ingest(keys[n:n+tail], items[n:n+tail]); err != nil {
		return err
	}
	report.Durability.Records = n + tail
	t0 := time.Now()
	srv2, err := server.New(cfg)
	if err != nil {
		return err
	}
	report.Durability.RecoveryMs = float64(time.Since(t0).Microseconds()) / 1e3
	report.Durability.WALReplayed = srv2.ReplayedRecords()
	_, identical := estimatesMatch(twin, srv2)
	report.Durability.Verified = identical
	srv2.Close()
	if !identical {
		return fmt.Errorf("server: recovered store differs from the twin fed the acked records")
	}

	fmt.Printf("\ndurability: WAL fsync=always, incremental checkpoints over %d stripes, %d records\n",
		serverDurStripes, report.Durability.Records)
	fmt.Printf("%-10s %14s %17s %9s\n", "pass", "dirty stripes", "checkpoint bytes", "ms")
	for _, row := range report.Durability.Checkpoints {
		fmt.Printf("%-10s %14d %17d %9.1f\n", row.Pass, row.DirtyStripes, row.CheckpointBytes, row.CheckpointMs)
	}
	fmt.Printf("recovery: manifest restore + %d WAL records replayed in %.1f ms; bit-identical to twin: %v\n",
		report.Durability.WALReplayed, report.Durability.RecoveryMs, identical)
	return nil
}
