// Command sketchd serves a keyed Store over HTTP — the module's network
// counting service. One Spec dimensions every per-key counter; producers
// POST batched records (NDJSON or the compact binary frame), consumers
// query estimates, top-k, and live stats, and peers ship whole-store
// snapshots for key-wise merge.
//
// Usage:
//
//	sketchd -spec "sbitmap:n=1e6,eps=0.01" -addr :8287
//	sketchd -spec "hll:mbits=4096" -checkpoint /var/lib/sketchd/ckpt \
//	        -checkpoint-interval 30s -maxkeys 2000000
//	sketchd -checkpoint /var/lib/sketchd/ckpt -wal-dir /var/lib/sketchd/wal \
//	        -fsync interval -max-durability-lag 5s
//	sketchd -addr :8287 -tcp-addr :8288          # raw TCP frame ingest
//	sketchd -addr :8287 -pprof-addr 127.0.0.1:6060
//	sketchd -spec "hll:mbits=4096" -window 1m -ring 5   # sliding windows
//
// With -window (and optionally -ring), the spec gains the
// windowed(width=...,ring=...) modifier: every key keeps a ring of
// per-sub-window sketches, ingest may carry record timestamps (frame v2,
// or an NDJSON "ts" field), and GET /v1/estimate?key=K&window=5m answers
// over the trailing span by merging the covering sub-windows (mergeable
// kinds) or reporting the last complete sub-window (S-bitmap, marked
// tumbling). Equivalent to writing the modifier into -spec directly.
//
// With -tcp-addr, the same binary add frames POST /v1/add accepts are
// also ingested over raw TCP (length-prefixed, acked per frame — see
// internal/wire), skipping HTTP entirely on the hot path. With
// -pprof-addr, net/http/pprof is served on its own listener (keep it on
// loopback).
//
// With -checkpoint, the named directory holds incremental snapshots —
// per-stripe files under a manifest, only the stripes dirtied since the
// previous pass rewritten — restored on start and written on the
// interval, on POST /v1/checkpoint, and on SIGTERM/SIGINT. With
// -wal-dir, every ingest mutation is additionally appended to a
// write-ahead log before its ack (-fsync picks the always/interval/never
// durability point) and the log tail is replayed on top of the restored
// checkpoint — so a crashed-and-restarted server resumes with exactly
// the records it acked, not just the last checkpoint.
//
// Standing queries (see internal/rules): PUT /v1/rules installs a
// continuous detection query — a single-key threshold watch, a
// prefix/any-key superspreader scan, or a top-k movers ranking — and the
// server evaluates it every -rule-interval against only the stripes
// dirtied since the previous pass (threshold rules additionally fire
// within the ingest call that crossed them). Alerts accumulate in a ring
// (GET /v1/alerts, sized by -alert-ring) and stream live over SSE
// (GET /v1/alerts/stream). With -checkpoint, installed rules, firing
// state, and alert history survive restarts via the manifest.
//
// Cluster mode (see internal/cluster): N sketchd processes become one
// logical service. Start every node with the same -spec (seed included)
// and the same -peers list; clients (cluster.Client, sbench -run
// cluster) partition ingest by consistent-hash key owner and
// scatter-gather queries. An edge node additionally pushes its whole
// store into a central aggregator on a timer:
//
//	sketchd -addr :8287 -spec "sbitmap:n=1e4,eps=0.1,seed=7" \
//	        -peers http://n1:8287,http://n2:8287,http://n3:8287
//	sketchd -role edge -aggregator http://agg:8287 -push-interval 30s ...
//	sketchd -role aggregator -addr :8287 ...
//
// Endpoints (see internal/server):
//
//	POST /v1/add         NDJSON {"key":...,"item":...} lines, or a binary
//	                     add frame (Content-Type application/x-sbitmap-frame)
//	GET  /v1/estimate    ?key=K [&window=5m]; repeat key= for a batch
//	GET  /v1/topk        ?k=N
//	GET  /v1/stats       totals + live metrics
//	PUT  /v1/rules       install a standing query (threshold/prefix/movers)
//	GET  /v1/rules       list rules; /v1/rules/{id} reads, DELETE removes
//	GET  /v1/alerts      ?limit=N — alert history, newest first
//	GET  /v1/alerts/stream  live alerts (Server-Sent Events, ?replay=N)
//	POST /v1/merge       Store snapshot envelope from a peer
//	POST /v1/checkpoint  write a durable snapshot now
//	GET  /v1/healthz     liveness + spec + role + uptime (JSON)
//	GET  /v1/cluster     this node's topology (role, peers, aggregator)
//	GET  /healthz        plain-text liveness
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	sbitmap "repro"
	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/wal"
	"repro/internal/wire"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

// config is the parsed flag set; split from serving so flag/spec errors
// are testable without binding a socket.
type config struct {
	addr         string
	tcpAddr      string
	pprofAddr    string
	server       server.Config
	interval     time.Duration
	pushInterval time.Duration
}

// parseFlags resolves the CLI vocabulary into a server.Config.
func parseFlags(args []string, stderr *os.File) (config, error) {
	fs := flag.NewFlagSet("sketchd", flag.ContinueOnError)
	if stderr != nil {
		fs.SetOutput(stderr)
	}
	var (
		specStr  = fs.String("spec", "sbitmap:n=1e6,eps=0.01", "per-key sketch spec (sbitmap.ParseSpec vocabulary)")
		addr     = fs.String("addr", "127.0.0.1:8287", "listen address (host:port; :0 picks a free port)")
		tcpAddr  = fs.String("tcp-addr", "", "raw TCP ingest listen address for length-prefixed add frames (empty = disabled)")
		pprofAdr = fs.String("pprof-addr", "", "net/http/pprof listen address (empty = disabled; never expose publicly)")
		ckDir    = fs.String("checkpoint", "", "checkpoint directory: manifest + per-stripe snapshots, restored on start, written periodically and on shutdown")
		interval = fs.Duration("checkpoint-interval", time.Minute, "periodic checkpoint interval (0 disables the timer; needs -checkpoint)")
		walDir   = fs.String("wal-dir", "", "write-ahead log directory: every ingest is appended before its ack and replayed on restart (empty = disabled)")
		fsyncStr = fs.String("fsync", "interval", "WAL fsync policy: always, interval, or never")
		fsyncInt = fs.Duration("fsync-interval", 0, "max age of unsynced WAL bytes under -fsync interval (0 = 100ms default)")
		walSeg   = fs.Int64("wal-segment-bytes", 0, "WAL segment rotation size in bytes (0 = 64 MiB default)")
		maxLag   = fs.Duration("max-durability-lag", 0, "degrade /v1/healthz to 503 when acked-but-not-durable data is older than this (0 = never)")
		ruleIntv = fs.Duration("rule-interval", time.Second, "standing-query evaluation interval: how often installed rules rescan dirtied stripes (0 disables the timer; threshold rules still fire on ingest)")
		alertRng = fs.Int("alert-ring", 0, "alert history ring capacity served by GET /v1/alerts (0 = 1024 default)")
		window   = fs.Duration("window", 0, "sub-window width for sliding-window counting (adds windowed(width=...) to the spec; 0 = disabled)")
		ring     = fs.Int("ring", 0, "sub-windows retained per key (needs -window; 0 = library default of 5)")
		maxKeys  = fs.Int("maxkeys", 0, "bound live keys, evicting arbitrary keys at the limit (0 = unbounded)")
		stripes  = fs.Int("stripes", 0, "store lock-stripe count (0 = library default)")
		maxBody  = fs.Int64("max-body", 0, "request body limit in bytes (0 = 32 MiB default)")
		role     = fs.String("role", "", "cluster role: standalone (default), edge, or aggregator")
		peers    = fs.String("peers", "", "comma-separated base URLs of the cluster's partition peers (same list on every node and client)")
		aggrURL  = fs.String("aggregator", "", "aggregator base URL an edge node pushes snapshots to (requires -role edge)")
		pushIntv = fs.Duration("push-interval", 30*time.Second, "edge snapshot-push interval (requires -role edge)")
	)
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if fs.NArg() > 0 {
		return config{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	spec, err := sbitmap.ParseSpec(*specStr)
	if err != nil {
		return config{}, err
	}
	if *window < 0 {
		return config{}, fmt.Errorf("-window %v is negative", *window)
	}
	if *ring < 0 {
		return config{}, fmt.Errorf("-ring %d is negative", *ring)
	}
	if *ring > 0 && *window == 0 && !spec.Windowed() {
		return config{}, fmt.Errorf("-ring needs -window (or a windowed(...) modifier in -spec)")
	}
	if *window > 0 || (*ring > 0 && spec.Windowed()) {
		if *window > 0 {
			if spec.Windowed() {
				return config{}, fmt.Errorf("-window conflicts with the windowed(...) modifier already in -spec %q; set the width in one place", *specStr)
			}
			spec.Window = *window
		}
		if *ring > 0 {
			// -ring sizes the ring whether the width came from -window or
			// from a windowed(...) modifier in -spec.
			spec.Ring = *ring
		}
		// Round-trip through ParseSpec so flag-built windowed specs get the
		// same validation (and ring default) as spec-string ones.
		spec, err = sbitmap.ParseSpec(spec.String())
		if err != nil {
			return config{}, fmt.Errorf("-window/-ring: %w", err)
		}
	}
	if *interval < 0 {
		return config{}, fmt.Errorf("-checkpoint-interval %v is negative", *interval)
	}
	policy, err := wal.ParsePolicy(*fsyncStr)
	if err != nil {
		return config{}, fmt.Errorf("-fsync: %w", err)
	}
	if *fsyncInt < 0 {
		return config{}, fmt.Errorf("-fsync-interval %v is negative", *fsyncInt)
	}
	if *walSeg < 0 {
		return config{}, fmt.Errorf("-wal-segment-bytes %d is negative", *walSeg)
	}
	if *maxLag < 0 {
		return config{}, fmt.Errorf("-max-durability-lag %v is negative", *maxLag)
	}
	if *ruleIntv < 0 {
		return config{}, fmt.Errorf("-rule-interval %v is negative", *ruleIntv)
	}
	if *alertRng < 0 {
		return config{}, fmt.Errorf("-alert-ring %d is negative", *alertRng)
	}
	switch *role {
	case "", server.RoleStandalone, server.RoleAggregator:
		if *aggrURL != "" {
			return config{}, fmt.Errorf("-aggregator needs -role edge (only edge nodes push snapshots)")
		}
	case server.RoleEdge:
		if *aggrURL == "" {
			return config{}, fmt.Errorf("-role edge needs -aggregator (where to push snapshots)")
		}
		if *pushIntv <= 0 {
			return config{}, fmt.Errorf("-push-interval %v must be positive", *pushIntv)
		}
	default:
		return config{}, fmt.Errorf("-role %q: want %s, %s, or %s",
			*role, server.RoleStandalone, server.RoleEdge, server.RoleAggregator)
	}
	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}
	if len(peerList) > 0 {
		// Fail on duplicate/empty peers now, not at first client routing.
		if _, err := cluster.NewRing(peerList, 0); err != nil {
			return config{}, fmt.Errorf("-peers: %w", err)
		}
	}
	clusterInfo := server.ClusterInfo{Role: *role, Peers: peerList, Aggregator: *aggrURL}
	if *role == server.RoleEdge {
		clusterInfo.PushIntervalSeconds = pushIntv.Seconds()
	}
	return config{
		addr:      *addr,
		tcpAddr:   *tcpAddr,
		pprofAddr: *pprofAdr,
		server: server.Config{
			Spec:             spec,
			MaxKeys:          *maxKeys,
			Stripes:          *stripes,
			CheckpointDir:    *ckDir,
			WALDir:           *walDir,
			FsyncPolicy:      policy,
			FsyncInterval:    *fsyncInt,
			WALSegmentBytes:  *walSeg,
			MaxDurabilityLag: *maxLag,
			MaxBodyBytes:     *maxBody,
			RuleEvalInterval: *ruleIntv,
			AlertRing:        *alertRng,
			Cluster:          clusterInfo,
		},
		interval:     *interval,
		pushInterval: *pushIntv,
	}, nil
}

func run(args []string, stderr *os.File) int {
	logger := log.New(stderr, "sketchd: ", log.LstdFlags)
	cfg, err := parseFlags(args, stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		logger.Printf("%v", err)
		return 1
	}
	srv, err := server.New(cfg.server)
	if err != nil {
		logger.Printf("%v", err)
		return 1
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		logger.Printf("%v", err)
		return 1
	}
	logger.Printf("serving spec %s on http://%s", cfg.server.Spec, ln.Addr())
	if n := srv.RestoredKeys(); n > 0 {
		logger.Printf("restored %d keys from checkpoint %s", n, cfg.server.CheckpointDir)
	}
	if n := srv.ReplayedRecords(); n > 0 {
		logger.Printf("replayed %d WAL records from %s", n, cfg.server.WALDir)
	}

	// Raw TCP ingest: the same SBF1 frames as POST /v1/add, length-prefixed
	// on long-lived connections, acked per frame (see internal/wire).
	var wireSrv *wire.Server
	if cfg.tcpAddr != "" {
		wln, err := net.Listen("tcp", cfg.tcpAddr)
		if err != nil {
			logger.Printf("%v", err)
			return 1
		}
		wireSrv = wire.Serve(wln, srv)
		defer wireSrv.Close()
		logger.Printf("wire ingest on tcp://%s", wln.Addr())
	}

	// Opt-in profiling endpoint on its own listener, so enabling it never
	// widens the service's own API surface.
	if cfg.pprofAddr != "" {
		pln, err := net.Listen("tcp", cfg.pprofAddr)
		if err != nil {
			logger.Printf("%v", err)
			return 1
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv := &http.Server{Handler: pmux}
		go pprofSrv.Serve(pln)
		defer pprofSrv.Close()
		logger.Printf("pprof on http://%s/debug/pprof/", pln.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Periodic checkpoints, serialized against the shutdown checkpoint by
	// the server itself; one failed write is logged, not fatal (the next
	// tick retries, and the previous checkpoint is still intact).
	if cfg.server.CheckpointDir != "" && cfg.interval > 0 {
		go func() {
			tick := time.NewTicker(cfg.interval)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if info, err := srv.Checkpoint(); err != nil {
						logger.Printf("periodic checkpoint: %v", err)
					} else {
						logger.Printf("checkpoint: %d keys, %d bytes in %.0f ms",
							info.Keys, info.Bytes, info.Seconds*1e3)
					}
				}
			}
		}()
	}

	// Edge role: push whole-store snapshots into the aggregator on a
	// timer. A down aggregator costs log lines, never counting; the next
	// successful push heals the gap (snapshots are cumulative unions).
	var pusher *cluster.Pusher
	if cfg.server.Cluster.Role == server.RoleEdge {
		pusher = &cluster.Pusher{
			Source:   srv.Store().MarshalBinary,
			Target:   server.NewClient(cfg.server.Cluster.Aggregator, server.WithRetry(2, 500*time.Millisecond)),
			Interval: cfg.pushInterval,
			Logf:     logger.Printf,
		}
		go pusher.Run(ctx)
		logger.Printf("edge role: pushing snapshots to %s every %v", cfg.server.Cluster.Aggregator, cfg.pushInterval)
	}

	httpSrv := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		logger.Printf("serve: %v", err)
		return 1
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills hard

	logger.Printf("shutting down")
	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if wireSrv != nil {
		// Close wire connections first so every fully received frame is in
		// the store before the shutdown checkpoint below snapshots it.
		if err := wireSrv.Close(); err != nil {
			logger.Printf("wire shutdown: %v", err)
		}
	}
	if err := httpSrv.Shutdown(shCtx); err != nil {
		logger.Printf("shutdown: %v", err)
	}
	if pusher != nil {
		// Ship what we counted since the last tick; a failure is logged
		// (the aggregator may be down too), not fatal.
		if res, err := pusher.PushOnce(shCtx); err != nil {
			logger.Printf("final snapshot push: %v", err)
		} else {
			logger.Printf("final snapshot push: %d keys -> %s", res.KeysMerged, cfg.server.Cluster.Aggregator)
		}
	}
	if cfg.server.CheckpointDir != "" {
		info, err := srv.Checkpoint()
		if err != nil {
			logger.Printf("final checkpoint: %v", err)
			return 1
		}
		logger.Printf("final checkpoint: %d keys, %d bytes (%d stripes) -> %s",
			info.Keys, info.Bytes, info.StripesWritten, info.Path)
	}
	// Flush and close the WAL last: the final checkpoint above already
	// truncated what it covers, and Close syncs any tail appends.
	if err := srv.Close(); err != nil {
		logger.Printf("wal close: %v", err)
		return 1
	}
	return 0
}
