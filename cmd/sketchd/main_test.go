package main

import (
	"strings"
	"testing"

	"repro/internal/server"
)

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-spec", "hll:mbits=4096,seed=7", "-addr", "127.0.0.1:0",
		"-checkpoint", "/tmp/ck.bin", "-checkpoint-interval", "5s",
		"-maxkeys", "100", "-stripes", "8", "-max-body", "1024",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.server.Spec.String() != "hll:mbits=4096,seed=7" {
		t.Errorf("spec = %s", cfg.server.Spec)
	}
	if cfg.addr != "127.0.0.1:0" || cfg.server.CheckpointPath != "/tmp/ck.bin" ||
		cfg.interval.Seconds() != 5 || cfg.server.MaxKeys != 100 ||
		cfg.server.Stripes != 8 || cfg.server.MaxBodyBytes != 1024 {
		t.Errorf("config = %+v", cfg)
	}
}

func TestParseFlagsErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"bad spec", []string{"-spec", "nope:mbits=1"}, "unknown sketch kind"},
		{"underdimensioned spec", []string{"-spec", "sbitmap:n=1e6"}, ""},
		{"negative interval", []string{"-checkpoint-interval", "-1s"}, "negative"},
		{"positional args", []string{"extra"}, "unexpected arguments"},
	} {
		cfg, err := parseFlags(tc.args, nil)
		if tc.name == "underdimensioned spec" {
			// The spec parses (dimensioning is checked at construction);
			// server.New must reject it instead.
			if err != nil {
				t.Fatalf("%s: parseFlags: %v", tc.name, err)
			}
			if _, err := server.New(cfg.server); err == nil {
				t.Errorf("%s: server.New accepted it", tc.name)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
