package main

import (
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/wal"
)

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-spec", "hll:mbits=4096,seed=7", "-addr", "127.0.0.1:0",
		"-checkpoint", "/tmp/ck", "-checkpoint-interval", "5s",
		"-wal-dir", "/tmp/wal", "-fsync", "always", "-fsync-interval", "50ms",
		"-wal-segment-bytes", "4096", "-max-durability-lag", "5s",
		"-maxkeys", "100", "-stripes", "8", "-max-body", "1024",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.server.Spec.String() != "hll:mbits=4096,seed=7" {
		t.Errorf("spec = %s", cfg.server.Spec)
	}
	if cfg.addr != "127.0.0.1:0" || cfg.server.CheckpointDir != "/tmp/ck" ||
		cfg.interval.Seconds() != 5 || cfg.server.MaxKeys != 100 ||
		cfg.server.Stripes != 8 || cfg.server.MaxBodyBytes != 1024 {
		t.Errorf("config = %+v", cfg)
	}
	if cfg.server.WALDir != "/tmp/wal" || cfg.server.FsyncPolicy != wal.FsyncAlways ||
		cfg.server.FsyncInterval != 50*time.Millisecond ||
		cfg.server.WALSegmentBytes != 4096 || cfg.server.MaxDurabilityLag != 5*time.Second {
		t.Errorf("durability config = %+v", cfg.server)
	}
	if cfg.tcpAddr != "" || cfg.pprofAddr != "" {
		t.Errorf("tcp/pprof listeners default on: %+v", cfg)
	}

	cfg, err = parseFlags([]string{
		"-tcp-addr", "127.0.0.1:9988", "-pprof-addr", "127.0.0.1:6060",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.tcpAddr != "127.0.0.1:9988" || cfg.pprofAddr != "127.0.0.1:6060" {
		t.Errorf("config = %+v", cfg)
	}
}

func TestParseFlagsWindow(t *testing.T) {
	// -window/-ring merge into the spec as the windowed(...) modifier.
	cfg, err := parseFlags([]string{
		"-spec", "hll:mbits=4096,seed=7", "-window", "1m", "-ring", "10",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.server.Spec.String(); got != "hll:mbits=4096,seed=7/windowed(width=1m0s,ring=10)" {
		t.Errorf("spec = %s", got)
	}
	// -ring omitted: the library default is filled in.
	cfg, err = parseFlags([]string{"-spec", "hll:mbits=4096", "-window", "30s"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.server.Spec.Ring == 0 || !cfg.server.Spec.Windowed() || cfg.server.Spec.Window != 30*time.Second {
		t.Errorf("spec = %+v", cfg.server.Spec)
	}
	// The modifier may equally live in -spec itself, flags untouched.
	cfg, err = parseFlags([]string{"-spec", "hll:mbits=4096/windowed(width=2m,ring=3)"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.server.Spec.Window != 2*time.Minute || cfg.server.Spec.Ring != 3 {
		t.Errorf("spec = %+v", cfg.server.Spec)
	}
	// And -ring may size a modifier that set only the width.
	cfg, err = parseFlags([]string{"-spec", "hll:mbits=4096/windowed(width=2m)", "-ring", "7"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.server.Spec.Window != 2*time.Minute || cfg.server.Spec.Ring != 7 {
		t.Errorf("spec = %+v", cfg.server.Spec)
	}
}

func TestParseFlagsCluster(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-spec", "hll:mbits=4096,seed=7", "-role", "edge",
		"-peers", "http://n1:8287, http://n2:8287,", // spaces and a trailing comma must not matter
		"-aggregator", "http://agg:8287", "-push-interval", "15s",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cl := cfg.server.Cluster
	if cl.Role != server.RoleEdge || cl.Aggregator != "http://agg:8287" ||
		len(cl.Peers) != 2 || cl.Peers[0] != "http://n1:8287" || cl.Peers[1] != "http://n2:8287" ||
		cl.PushIntervalSeconds != 15 || cfg.pushInterval.Seconds() != 15 {
		t.Errorf("cluster config = %+v (pushInterval %v)", cl, cfg.pushInterval)
	}

	// Aggregator role: peers allowed, no push config.
	cfg, err = parseFlags([]string{"-role", "aggregator", "-peers", "http://n1:8287"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.server.Cluster.Role != server.RoleAggregator || cfg.server.Cluster.PushIntervalSeconds != 0 {
		t.Errorf("cluster config = %+v", cfg.server.Cluster)
	}
}

func TestParseFlagsErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"bad spec", []string{"-spec", "nope:mbits=1"}, "unknown sketch kind"},
		{"underdimensioned spec", []string{"-spec", "sbitmap:n=1e6"}, ""},
		{"negative interval", []string{"-checkpoint-interval", "-1s"}, "negative"},
		{"bad fsync policy", []string{"-fsync", "sometimes"}, "-fsync"},
		{"negative fsync interval", []string{"-fsync-interval", "-1s"}, "negative"},
		{"negative segment bytes", []string{"-wal-segment-bytes", "-1"}, "negative"},
		{"negative durability lag", []string{"-max-durability-lag", "-1s"}, "negative"},
		{"positional args", []string{"extra"}, "unexpected arguments"},
		{"negative window", []string{"-window", "-1m"}, "-window"},
		{"negative ring", []string{"-ring", "-2"}, "-ring"},
		{"ring without window", []string{"-ring", "5"}, "-ring needs -window"},
		{"ring out of range", []string{"-window", "1m", "-ring", "70000"}, "ring"},
		{"window conflicts with spec modifier", []string{
			"-spec", "hll:mbits=4096/windowed(width=1m)", "-window", "2m"}, "conflicts"},
		{"flag retention overflow", []string{"-window", "2562047h", "-ring", "65536"}, "overflow"},
		{"unknown role", []string{"-role", "router"}, "-role"},
		{"edge without aggregator", []string{"-role", "edge"}, "-aggregator"},
		{"edge with zero push interval", []string{"-role", "edge", "-aggregator", "http://agg:8287", "-push-interval", "0s"}, "push-interval"},
		{"aggregator flag without edge role", []string{"-aggregator", "http://agg:8287"}, "-role edge"},
		{"duplicate peers", []string{"-peers", "http://n1:8287,http://n1:8287"}, "duplicate peer"},
	} {
		cfg, err := parseFlags(tc.args, nil)
		if tc.name == "underdimensioned spec" {
			// The spec parses (dimensioning is checked at construction);
			// server.New must reject it instead.
			if err != nil {
				t.Fatalf("%s: parseFlags: %v", tc.name, err)
			}
			if _, err := server.New(cfg.server); err == nil {
				t.Errorf("%s: server.New accepted it", tc.name)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
