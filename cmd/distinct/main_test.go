package main

import "testing"

func TestBuildCountersSingle(t *testing.T) {
	for _, algo := range []string{"sbitmap", "hll", "loglog", "mr", "lc", "fm", "adaptive", "exact"} {
		cs, err := buildCounters(algo, 1e5, 0.02, 8000, 1)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(cs) != 1 || cs[0].name != algo {
			t.Fatalf("%s: got %v", algo, cs)
		}
		// Every built counter must actually count.
		for i := uint64(0); i < 1000; i++ {
			cs[0].counter.AddUint64(i)
		}
		est := cs[0].counter.Estimate()
		if est < 300 || est > 3000 {
			t.Errorf("%s: estimate %.0f for n=1000", algo, est)
		}
	}
}

func TestBuildCountersAll(t *testing.T) {
	cs, err := buildCounters("all", 1e5, 0.02, 8000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 8 {
		t.Fatalf("all built %d counters, want 8", len(cs))
	}
}

func TestBuildCountersErrors(t *testing.T) {
	if _, err := buildCounters("nope", 1e5, 0.02, 8000, 1); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := buildCounters("mr", 1e9, 0.02, 64, 1); err == nil {
		t.Error("impossible mr-bitmap dimensioning accepted")
	}
}
