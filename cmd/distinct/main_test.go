package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	sbitmap "repro"
)

func TestBuildCountersSingle(t *testing.T) {
	for _, algo := range []string{"sbitmap", "hll", "loglog", "mr", "lc", "fm", "adaptive", "exact"} {
		cs, err := buildCounters(algo, 1e5, 0.02, 8000, 1)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(cs) != 1 || cs[0].name != algo {
			t.Fatalf("%s: got %v", algo, cs)
		}
		// Every built counter must actually count.
		for i := uint64(0); i < 1000; i++ {
			cs[0].counter.AddUint64(i)
		}
		est := cs[0].counter.Estimate()
		if est < 300 || est > 3000 {
			t.Errorf("%s: estimate %.0f for n=1000", algo, est)
		}
	}
}

func TestBuildCountersAll(t *testing.T) {
	cs, err := buildCounters("all", 1e5, 0.02, 8000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 8 {
		t.Fatalf("all built %d counters, want 8", len(cs))
	}
}

func TestBuildCountersErrors(t *testing.T) {
	if _, err := buildCounters("nope", 1e5, 0.02, 8000, 1); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := buildCounters("mr", 1e9, 0.02, 64, 1); err == nil {
		t.Error("impossible mr-bitmap dimensioning accepted")
	}
}

func TestKeyedSpecResolution(t *testing.T) {
	// -spec wins and must be single.
	sp, err := keyedSpec("hll:mbits=2048", "sbitmap", 1e6, 0.01, 0, 1)
	if err != nil || sp.Kind != "hll" || sp.MemoryBits != 2048 {
		t.Fatalf("spec path: %+v, %v", sp, err)
	}
	if _, err := keyedSpec("hll:mbits=1;hll:mbits=2", "", 1e6, 0.01, 0, 1); err == nil {
		t.Error("multi-spec accepted for -keyed")
	}
	// Flag vocabulary: S-bitmap from (n, eps); budget kinds from Memory.
	sp, err = keyedSpec("", "sbitmap", 1e5, 0.02, 0, 7)
	if err != nil || sp.N != 1e5 || sp.Eps != 0.02 || sp.Seed != 7 {
		t.Fatalf("sbitmap flags: %+v, %v", sp, err)
	}
	sp, err = keyedSpec("", "hll", 1e5, 0.02, 0, 1)
	if err != nil || sp.MemoryBits <= 0 {
		t.Fatalf("hll default budget: %+v, %v", sp, err)
	}
	sp, err = keyedSpec("", "mr", 1e5, 0.02, 4000, 1)
	if err != nil || sp.N != 1e5 || sp.MemoryBits != 4000 {
		t.Fatalf("mr flags: %+v, %v", sp, err)
	}
	if _, err := keyedSpec("", "nope", 1e5, 0.02, 0, 1); err == nil {
		t.Error("unknown algo accepted")
	}
	// Every resolved spec must construct a Store.
	for _, algo := range []string{"sbitmap", "hll", "loglog", "mr", "lc", "fm", "adaptive", "exact"} {
		sp, err := keyedSpec("", algo, 1e5, 0.02, 0, 1)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		st, err := sbitmap.NewStore[string](sp)
		if err != nil {
			t.Fatalf("%s: NewStore: %v", algo, err)
		}
		st.AddString("k", "v")
		if est, ok := st.Estimate("k"); !ok || est < 0.5 {
			t.Errorf("%s: estimate %v ok=%v", algo, est, ok)
		}
	}
}

func TestRunExitCodes(t *testing.T) {
	// Satellite acceptance: unreadable input and bad -spec exit non-zero
	// with a clear one-line message, never a bare panic-style failure.
	dir := t.TempDir()
	good := filepath.Join(dir, "lines.txt")
	if err := os.WriteFile(good, []byte("a\nb\na\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string // substring of stderr; "" means stderr must be empty
	}{
		{"ok stdin", []string{"-algo", "exact"}, 0, ""},
		{"ok file", []string{"-algo", "exact", good}, 0, ""},
		{"missing file", []string{"-algo", "exact", filepath.Join(dir, "nope.txt")}, 1, "no such file"},
		{"one bad file of several", []string{"-algo", "exact", good, filepath.Join(dir, "nope.txt")}, 1, "no such file"},
		{"bad spec", []string{"-spec", "wat:mbits=1"}, 1, "unknown sketch kind"},
		{"underdimensioned spec", []string{"-spec", "sbitmap:n=1e6"}, 1, "exactly two of"},
		{"bad keyed spec", []string{"-keyed", "-spec", "wat"}, 1, "unknown sketch kind"},
		{"multi keyed spec", []string{"-keyed", "-spec", "exact;exact"}, 1, "single spec"},
		{"bad algo", []string{"-algo", "wat"}, 1, "unknown algorithm"},
		{"bad flag", []string{"-definitely-not-a-flag"}, 1, "flag provided but not defined"},
		{"bad dimensioning", []string{"-n", "-5"}, 1, ""},
	} {
		var stdout, stderr bytes.Buffer
		code := run(tc.args, strings.NewReader("x\ny\n"), &stdout, &stderr)
		if code != tc.wantCode {
			t.Errorf("%s: exit %d, want %d (stderr: %s)", tc.name, code, tc.wantCode, stderr.String())
			continue
		}
		if tc.wantCode == 0 && tc.wantErr == "" && stderr.Len() > 0 {
			t.Errorf("%s: unexpected stderr: %s", tc.name, stderr.String())
		}
		if tc.wantErr != "" && !strings.Contains(stderr.String(), tc.wantErr) {
			t.Errorf("%s: stderr %q does not mention %q", tc.name, stderr.String(), tc.wantErr)
		}
	}
}

func TestRunCountsFiles(t *testing.T) {
	dir := t.TempDir()
	f1 := filepath.Join(dir, "a.txt")
	f2 := filepath.Join(dir, "b.txt")
	if err := os.WriteFile(f1, []byte("x\ny\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(f2, []byte("y\nz\nz\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-algo", "exact", f1, f2}, strings.NewReader("ignored\n"), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "5 lines read") || !strings.Contains(out, "estimate            3") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRunKeyedFromFile(t *testing.T) {
	dir := t.TempDir()
	f := filepath.Join(dir, "kv.txt")
	if err := os.WriteFile(f, []byte("u1 a\nu1 b\nu2 a\nmalformed\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-keyed", "-spec", "exact", "-top", "2", f}, strings.NewReader(""), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "2 keys tracked") || !strings.Contains(out, "1 without 'key item' shape skipped") {
		t.Errorf("output:\n%s", out)
	}
	if !strings.Contains(out, "u1") {
		t.Errorf("top keys missing u1:\n%s", out)
	}
}

// errReader fails mid-stream, as a disappearing pipe would.
type errReader struct{ err error }

func (r errReader) Read([]byte) (int, error) { return 0, r.err }

func TestRunStreamError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-algo", "exact"}, errReader{err: errors.New("pipe exploded")}, &stdout, &stderr)
	if code != 1 || !strings.Contains(stderr.String(), "pipe exploded") {
		t.Errorf("exit %d, stderr %q", code, stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	code = run([]string{"-keyed", "-spec", "exact"}, errReader{err: errors.New("pipe exploded")}, &stdout, &stderr)
	if code != 1 || !strings.Contains(stderr.String(), "pipe exploded") {
		t.Errorf("keyed: exit %d, stderr %q", code, stderr.String())
	}
}
