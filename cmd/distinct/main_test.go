package main

import (
	"testing"

	sbitmap "repro"
)

func TestBuildCountersSingle(t *testing.T) {
	for _, algo := range []string{"sbitmap", "hll", "loglog", "mr", "lc", "fm", "adaptive", "exact"} {
		cs, err := buildCounters(algo, 1e5, 0.02, 8000, 1)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(cs) != 1 || cs[0].name != algo {
			t.Fatalf("%s: got %v", algo, cs)
		}
		// Every built counter must actually count.
		for i := uint64(0); i < 1000; i++ {
			cs[0].counter.AddUint64(i)
		}
		est := cs[0].counter.Estimate()
		if est < 300 || est > 3000 {
			t.Errorf("%s: estimate %.0f for n=1000", algo, est)
		}
	}
}

func TestBuildCountersAll(t *testing.T) {
	cs, err := buildCounters("all", 1e5, 0.02, 8000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 8 {
		t.Fatalf("all built %d counters, want 8", len(cs))
	}
}

func TestBuildCountersErrors(t *testing.T) {
	if _, err := buildCounters("nope", 1e5, 0.02, 8000, 1); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := buildCounters("mr", 1e9, 0.02, 64, 1); err == nil {
		t.Error("impossible mr-bitmap dimensioning accepted")
	}
}

func TestKeyedSpecResolution(t *testing.T) {
	// -spec wins and must be single.
	sp, err := keyedSpec("hll:mbits=2048", "sbitmap", 1e6, 0.01, 0, 1)
	if err != nil || sp.Kind != "hll" || sp.MemoryBits != 2048 {
		t.Fatalf("spec path: %+v, %v", sp, err)
	}
	if _, err := keyedSpec("hll:mbits=1;hll:mbits=2", "", 1e6, 0.01, 0, 1); err == nil {
		t.Error("multi-spec accepted for -keyed")
	}
	// Flag vocabulary: S-bitmap from (n, eps); budget kinds from Memory.
	sp, err = keyedSpec("", "sbitmap", 1e5, 0.02, 0, 7)
	if err != nil || sp.N != 1e5 || sp.Eps != 0.02 || sp.Seed != 7 {
		t.Fatalf("sbitmap flags: %+v, %v", sp, err)
	}
	sp, err = keyedSpec("", "hll", 1e5, 0.02, 0, 1)
	if err != nil || sp.MemoryBits <= 0 {
		t.Fatalf("hll default budget: %+v, %v", sp, err)
	}
	sp, err = keyedSpec("", "mr", 1e5, 0.02, 4000, 1)
	if err != nil || sp.N != 1e5 || sp.MemoryBits != 4000 {
		t.Fatalf("mr flags: %+v, %v", sp, err)
	}
	if _, err := keyedSpec("", "nope", 1e5, 0.02, 0, 1); err == nil {
		t.Error("unknown algo accepted")
	}
	// Every resolved spec must construct a Store.
	for _, algo := range []string{"sbitmap", "hll", "loglog", "mr", "lc", "fm", "adaptive", "exact"} {
		sp, err := keyedSpec("", algo, 1e5, 0.02, 0, 1)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		st, err := sbitmap.NewStore[string](sp)
		if err != nil {
			t.Fatalf("%s: NewStore: %v", algo, err)
		}
		st.AddString("k", "v")
		if est, ok := st.Estimate("k"); !ok || est < 0.5 {
			t.Errorf("%s: estimate %v ok=%v", algo, est, ok)
		}
	}
}
