// Command distinct estimates the number of distinct lines on stdin (or in
// the named files) using a chosen sketch — a minimal production-shaped
// consumer of the library.
//
// Usage:
//
//	cat access.log | awk '{print $1}' | distinct                 # S-bitmap, defaults
//	distinct -algo hll -mbits 4096 < ids.txt                     # HyperLogLog
//	distinct -algo hll -mbits 4096 ids.txt more-ids.txt          # file arguments
//	distinct -algo exact < ids.txt                               # ground truth
//	distinct -algo all -n 1e7 -eps 0.02 < ids.txt                # compare everything
//	distinct -spec "sbitmap:n=1e6,eps=0.01" < ids.txt            # spec string
//	distinct -spec "hll:mbits=4096;loglog:mbits=4096" < ids.txt  # several specs
//	awk '{print $1, $7}' access.log | distinct -keyed -top 5     # per-key counting
//
// The -n / -eps pair dimensions the S-bitmap (and sizes budget-based
// competitors via -mbits); -spec takes the same semicolon-separated spec
// strings accepted everywhere else in the module (sbitmap.ParseSpec), so a
// config file, a CLI flag, and a library call all share one vocabulary.
// Output reports the estimate and the memory the summary consumed.
//
// With -keyed, each line is "key item" (first field the key, the rest the
// item): one counter per key in a keyed Store — per-user distinct URLs,
// per-source distinct destinations, per-link flows. A single spec
// dimensions every per-key counter; output is the top -top keys by
// estimate plus store totals. -maxkeys bounds memory by evicting
// arbitrary keys once the limit is hit.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	sbitmap "repro"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the whole command, factored for exit-code testing: every failure
// — bad flags, an unparseable -spec, an unreadable input file, a stream
// error mid-read — reports a clear one-line message on stderr and a
// non-zero exit code.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("distinct", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		algo    = fs.String("algo", "sbitmap", "sketch: sbitmap|hll|loglog|mr|lc|fm|adaptive|exact|all")
		spec    = fs.String("spec", "", "semicolon-separated sketch specs (overrides -algo), e.g. 'sbitmap:n=1e6,eps=0.01'")
		n       = fs.Float64("n", 1e6, "cardinality upper bound N (dimensioning)")
		eps     = fs.Float64("eps", 0.01, "target RRMSE for the S-bitmap")
		mbits   = fs.Int("mbits", 0, "memory budget in bits for budget-based sketches (default: what the S-bitmap needs)")
		seed    = fs.Uint64("seed", 1, "hash seed")
		keyed   = fs.Bool("keyed", false, "per-key counting: lines are 'key item', one counter per key")
		top     = fs.Int("top", 10, "with -keyed: keys to report, by descending estimate")
		maxKeys = fs.Int("maxkeys", 0, "with -keyed: bound live keys (0 = unbounded)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 1 // the FlagSet already printed the message and usage
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "distinct: %v\n", err)
		return 1
	}

	// Positional arguments name input files, read in order; no arguments
	// means stdin. Open them all up front so a typo'd path fails before
	// any counting starts.
	input := stdin
	if fs.NArg() > 0 {
		files := make([]io.Reader, 0, fs.NArg())
		var closers []io.Closer
		defer func() {
			for _, c := range closers {
				c.Close()
			}
		}()
		for _, path := range fs.Args() {
			f, err := os.Open(path)
			if err != nil {
				return fail(err)
			}
			files = append(files, f)
			closers = append(closers, f)
		}
		input = io.MultiReader(files...)
	}

	if *keyed {
		if err := runKeyed(input, stdout, *spec, *algo, *n, *eps, *mbits, *seed, *top, *maxKeys); err != nil {
			return fail(err)
		}
		return 0
	}

	var counters []namedCounter
	var err error
	if *spec != "" {
		counters, err = buildSpecCounters(*spec)
	} else {
		budget := *mbits
		if budget == 0 {
			budget, err = sbitmap.Memory(*n, *eps)
			if err != nil {
				return fail(err)
			}
		}
		counters, err = buildCounters(*algo, *n, *eps, budget, *seed)
	}
	if err != nil {
		return fail(err)
	}

	// Lines feed every counter through the batch ingestion path: each line
	// is copied out of the scanner's volatile buffer into a batch, and a
	// full batch is offered to each sketch in one AddBatchString call
	// (hashing identically to per-line Add of the raw bytes).
	const lineBatch = 512
	scanner := bufio.NewScanner(input)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	lines := 0
	batch := make([]string, 0, lineBatch)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		for _, c := range counters {
			sbitmap.AddBatchString(c.counter, batch)
		}
		batch = batch[:0]
	}
	for scanner.Scan() {
		batch = append(batch, string(scanner.Bytes()))
		if len(batch) == lineBatch {
			flush()
		}
		lines++
	}
	if err := scanner.Err(); err != nil {
		return fail(fmt.Errorf("reading input: %w", err))
	}
	flush()

	fmt.Fprintf(stdout, "%d lines read\n", lines)
	width := 10
	for _, c := range counters {
		if len(c.name) > width {
			width = len(c.name)
		}
	}
	for _, c := range counters {
		fmt.Fprintf(stdout, "%-*s estimate %12.0f   memory %8d bits\n",
			width, c.name, c.counter.Estimate(), c.counter.SizeBits())
	}
	return 0
}

// runKeyed is the -keyed mode: one counter per key in a Store, lines
// split into key (first field) and item (rest of the line).
func runKeyed(input io.Reader, stdout io.Writer, specStr, algo string, n, eps float64, mbits int, seed uint64, top, maxKeys int) error {
	spec, err := keyedSpec(specStr, algo, n, eps, mbits, seed)
	if err != nil {
		return err
	}
	var opts []sbitmap.StoreOption
	if maxKeys > 0 {
		opts = append(opts, sbitmap.WithMaxKeys(maxKeys))
	}
	store, err := sbitmap.NewStore[string](spec, opts...)
	if err != nil {
		return err
	}
	evicted := 0
	store.OnEvict(func(string, sbitmap.Counter) { evicted++ })

	// Lines feed the store through the keyed batch path: key and item are
	// copied out of the scanner's volatile buffer, and a full batch routes
	// with one hash pass and one lock per touched stripe.
	const lineBatch = 512
	scanner := bufio.NewScanner(input)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	lines, skipped := 0, 0
	keys := make([]string, 0, lineBatch)
	items := make([]string, 0, lineBatch)
	flush := func() {
		if len(keys) > 0 {
			store.AddBatchString(keys, items)
			keys, items = keys[:0], items[:0]
		}
	}
	for scanner.Scan() {
		lines++
		line := strings.TrimSpace(string(scanner.Bytes()))
		// Split at the FIRST whitespace of either kind, so a TSV line
		// whose item contains spaces still keys correctly.
		cut := strings.IndexAny(line, " \t")
		if cut <= 0 {
			skipped++
			continue
		}
		key, item := line[:cut], strings.TrimSpace(line[cut+1:])
		if item == "" {
			skipped++
			continue
		}
		keys = append(keys, key)
		items = append(items, item)
		if len(keys) == lineBatch {
			flush()
		}
	}
	if err := scanner.Err(); err != nil {
		return fmt.Errorf("reading input: %w", err)
	}
	flush()

	fmt.Fprintf(stdout, "%d lines read", lines)
	if skipped > 0 {
		fmt.Fprintf(stdout, " (%d without 'key item' shape skipped)", skipped)
	}
	fmt.Fprintf(stdout, "\n%d keys tracked, spec %s, %d bits of sketch, %d bytes resident",
		store.Len(), spec, store.SizeBits(), store.Footprint())
	if evicted > 0 {
		fmt.Fprintf(stdout, ", %d keys evicted (-maxkeys %d)", evicted, maxKeys)
	}
	fmt.Fprintln(stdout)
	ranked := store.TopK(top)
	if len(ranked) > 0 {
		width := 10
		for _, ke := range ranked {
			if len(ke.Key) > width {
				width = len(ke.Key)
			}
		}
		fmt.Fprintf(stdout, "\ntop %d keys by estimated distinct items:\n", len(ranked))
		for _, ke := range ranked {
			fmt.Fprintf(stdout, "%-*s %12.0f\n", width, ke.Key, ke.Estimate)
		}
	}
	return nil
}

// keyedSpec resolves the single per-key spec of -keyed mode from either
// vocabulary (-spec wins; it must name exactly one spec).
func keyedSpec(specStr, algo string, n, eps float64, mbits int, seed uint64) (sbitmap.Spec, error) {
	if specStr != "" {
		if strings.Contains(specStr, ";") {
			return sbitmap.Spec{}, fmt.Errorf("-keyed takes a single spec, got %q", specStr)
		}
		return sbitmap.ParseSpec(specStr)
	}
	kind, err := sbitmap.ParseKind(algo)
	if err != nil || kind == "" {
		return sbitmap.Spec{}, fmt.Errorf("unknown algorithm %q", algo)
	}
	spec := sbitmap.Spec{Kind: kind, Seed: seed}
	switch kind {
	case sbitmap.KindSBitmap:
		spec.N, spec.Eps = n, eps
	case sbitmap.KindMRBitmap, sbitmap.KindVirtualBitmap:
		spec.N, spec.MemoryBits = n, mbits
		if mbits == 0 {
			spec.MemoryBits, err = sbitmap.Memory(n, eps)
			if err != nil {
				return sbitmap.Spec{}, err
			}
		}
	case sbitmap.KindExact:
		// no dimensioning
	default:
		spec.MemoryBits = mbits
		if mbits == 0 {
			spec.MemoryBits, err = sbitmap.Memory(n, eps)
			if err != nil {
				return sbitmap.Spec{}, err
			}
		}
	}
	return spec, nil
}

type namedCounter struct {
	name    string
	counter sbitmap.Counter
}

// buildSpecCounters constructs one counter per semicolon-separated spec.
func buildSpecCounters(specs string) ([]namedCounter, error) {
	var out []namedCounter
	for _, s := range strings.Split(specs, ";") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		sp, err := sbitmap.ParseSpec(s)
		if err != nil {
			return nil, err
		}
		c, err := sp.New()
		if err != nil {
			return nil, err
		}
		// The full spec string distinguishes multiple specs of one kind
		// (e.g. two hll budgets side by side).
		out = append(out, namedCounter{sp.String(), c})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -spec")
	}
	return out, nil
}

// buildCounters maps the classic flag vocabulary onto Specs: the S-bitmap
// is dimensioned from (n, eps), every budget-based competitor from the
// shared budget, and mr/vb additionally from n — the paper's like-for-like
// accounting.
func buildCounters(algo string, n, eps float64, budget int, seed uint64) ([]namedCounter, error) {
	mk := func(name string) (namedCounter, error) {
		kind, err := sbitmap.ParseKind(name)
		if err != nil {
			return namedCounter{}, fmt.Errorf("unknown algorithm %q", name)
		}
		spec := sbitmap.Spec{Kind: kind, Seed: seed}
		switch kind {
		case sbitmap.KindSBitmap:
			spec.N, spec.Eps = n, eps
		case sbitmap.KindMRBitmap, sbitmap.KindVirtualBitmap:
			spec.N, spec.MemoryBits = n, budget
		case sbitmap.KindExact:
			// no dimensioning
		default:
			spec.MemoryBits = budget
		}
		c, err := spec.New()
		if err != nil {
			return namedCounter{}, err
		}
		return namedCounter{name, c}, nil
	}
	if algo == "all" {
		var out []namedCounter
		for _, name := range []string{"sbitmap", "hll", "loglog", "mr", "lc", "fm", "adaptive", "exact"} {
			c, err := mk(name)
			if err != nil {
				return nil, err
			}
			out = append(out, c)
		}
		return out, nil
	}
	c, err := mk(algo)
	if err != nil {
		return nil, err
	}
	return []namedCounter{c}, nil
}
