// Command distinct estimates the number of distinct lines on stdin using a
// chosen sketch — a minimal production-shaped consumer of the library.
//
// Usage:
//
//	cat access.log | awk '{print $1}' | distinct                 # S-bitmap, defaults
//	distinct -algo hll -mbits 4096 < ids.txt                     # HyperLogLog
//	distinct -algo exact < ids.txt                               # ground truth
//	distinct -algo all -n 1e7 -eps 0.02 < ids.txt                # compare everything
//
// The -n / -eps pair dimensions the S-bitmap (and sizes budget-based
// competitors via -mbits); output reports the estimate and the memory the
// summary consumed.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	sbitmap "repro"
)

func main() {
	var (
		algo  = flag.String("algo", "sbitmap", "sketch: sbitmap|hll|loglog|mr|lc|fm|adaptive|exact|all")
		n     = flag.Float64("n", 1e6, "cardinality upper bound N (dimensioning)")
		eps   = flag.Float64("eps", 0.01, "target RRMSE for the S-bitmap")
		mbits = flag.Int("mbits", 0, "memory budget in bits for budget-based sketches (default: what the S-bitmap needs)")
		seed  = flag.Uint64("seed", 1, "hash seed")
	)
	flag.Parse()

	budget := *mbits
	if budget == 0 {
		var err error
		budget, err = sbitmap.Memory(*n, *eps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "distinct: %v\n", err)
			os.Exit(1)
		}
	}

	counters, err := buildCounters(*algo, *n, *eps, budget, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "distinct: %v\n", err)
		os.Exit(1)
	}

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	lines := 0
	for scanner.Scan() {
		for _, c := range counters {
			c.counter.Add(scanner.Bytes())
		}
		lines++
	}
	if err := scanner.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "distinct: reading stdin: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("%d lines read\n", lines)
	for _, c := range counters {
		fmt.Printf("%-10s estimate %12.0f   memory %8d bits\n",
			c.name, c.counter.Estimate(), c.counter.SizeBits())
	}
}

type namedCounter struct {
	name    string
	counter sbitmap.Counter
}

func buildCounters(algo string, n, eps float64, budget int, seed uint64) ([]namedCounter, error) {
	mk := func(name string) (namedCounter, error) {
		switch name {
		case "sbitmap":
			s, err := sbitmap.New(n, eps, sbitmap.WithSeed(seed))
			return namedCounter{name, s}, err
		case "hll":
			return namedCounter{name, sbitmap.NewHyperLogLog(budget, sbitmap.WithSeed(seed))}, nil
		case "loglog":
			return namedCounter{name, sbitmap.NewLogLog(budget, sbitmap.WithSeed(seed))}, nil
		case "mr":
			c, err := sbitmap.NewMRBitmap(budget, n, sbitmap.WithSeed(seed))
			return namedCounter{name, c}, err
		case "lc":
			return namedCounter{name, sbitmap.NewLinearCounting(budget, sbitmap.WithSeed(seed))}, nil
		case "fm":
			return namedCounter{name, sbitmap.NewFM(budget, sbitmap.WithSeed(seed))}, nil
		case "adaptive":
			return namedCounter{name, sbitmap.NewAdaptiveSampler(budget, sbitmap.WithSeed(seed))}, nil
		case "exact":
			return namedCounter{name, sbitmap.NewExact()}, nil
		default:
			return namedCounter{}, fmt.Errorf("unknown algorithm %q", name)
		}
	}
	if algo == "all" {
		var out []namedCounter
		for _, name := range []string{"sbitmap", "hll", "loglog", "mr", "lc", "fm", "adaptive", "exact"} {
			c, err := mk(name)
			if err != nil {
				return nil, err
			}
			out = append(out, c)
		}
		return out, nil
	}
	c, err := mk(algo)
	if err != nil {
		return nil, err
	}
	return []namedCounter{c}, nil
}
