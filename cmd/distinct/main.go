// Command distinct estimates the number of distinct lines on stdin using a
// chosen sketch — a minimal production-shaped consumer of the library.
//
// Usage:
//
//	cat access.log | awk '{print $1}' | distinct                 # S-bitmap, defaults
//	distinct -algo hll -mbits 4096 < ids.txt                     # HyperLogLog
//	distinct -algo exact < ids.txt                               # ground truth
//	distinct -algo all -n 1e7 -eps 0.02 < ids.txt                # compare everything
//	distinct -spec "sbitmap:n=1e6,eps=0.01" < ids.txt            # spec string
//	distinct -spec "hll:mbits=4096;loglog:mbits=4096" < ids.txt  # several specs
//
// The -n / -eps pair dimensions the S-bitmap (and sizes budget-based
// competitors via -mbits); -spec takes the same semicolon-separated spec
// strings accepted everywhere else in the module (sbitmap.ParseSpec), so a
// config file, a CLI flag, and a library call all share one vocabulary.
// Output reports the estimate and the memory the summary consumed.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	sbitmap "repro"
)

func main() {
	var (
		algo  = flag.String("algo", "sbitmap", "sketch: sbitmap|hll|loglog|mr|lc|fm|adaptive|exact|all")
		spec  = flag.String("spec", "", "semicolon-separated sketch specs (overrides -algo), e.g. 'sbitmap:n=1e6,eps=0.01'")
		n     = flag.Float64("n", 1e6, "cardinality upper bound N (dimensioning)")
		eps   = flag.Float64("eps", 0.01, "target RRMSE for the S-bitmap")
		mbits = flag.Int("mbits", 0, "memory budget in bits for budget-based sketches (default: what the S-bitmap needs)")
		seed  = flag.Uint64("seed", 1, "hash seed")
	)
	flag.Parse()

	var counters []namedCounter
	var err error
	if *spec != "" {
		counters, err = buildSpecCounters(*spec)
	} else {
		budget := *mbits
		if budget == 0 {
			budget, err = sbitmap.Memory(*n, *eps)
			if err != nil {
				fmt.Fprintf(os.Stderr, "distinct: %v\n", err)
				os.Exit(1)
			}
		}
		counters, err = buildCounters(*algo, *n, *eps, budget, *seed)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "distinct: %v\n", err)
		os.Exit(1)
	}

	// Lines feed every counter through the batch ingestion path: each line
	// is copied out of the scanner's volatile buffer into a batch, and a
	// full batch is offered to each sketch in one AddBatchString call
	// (hashing identically to per-line Add of the raw bytes).
	const lineBatch = 512
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	lines := 0
	batch := make([]string, 0, lineBatch)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		for _, c := range counters {
			sbitmap.AddBatchString(c.counter, batch)
		}
		batch = batch[:0]
	}
	for scanner.Scan() {
		batch = append(batch, string(scanner.Bytes()))
		if len(batch) == lineBatch {
			flush()
		}
		lines++
	}
	if err := scanner.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "distinct: reading stdin: %v\n", err)
		os.Exit(1)
	}
	flush()

	fmt.Printf("%d lines read\n", lines)
	width := 10
	for _, c := range counters {
		if len(c.name) > width {
			width = len(c.name)
		}
	}
	for _, c := range counters {
		fmt.Printf("%-*s estimate %12.0f   memory %8d bits\n",
			width, c.name, c.counter.Estimate(), c.counter.SizeBits())
	}
}

type namedCounter struct {
	name    string
	counter sbitmap.Counter
}

// buildSpecCounters constructs one counter per semicolon-separated spec.
func buildSpecCounters(specs string) ([]namedCounter, error) {
	var out []namedCounter
	for _, s := range strings.Split(specs, ";") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		sp, err := sbitmap.ParseSpec(s)
		if err != nil {
			return nil, err
		}
		c, err := sp.New()
		if err != nil {
			return nil, err
		}
		// The full spec string distinguishes multiple specs of one kind
		// (e.g. two hll budgets side by side).
		out = append(out, namedCounter{sp.String(), c})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -spec")
	}
	return out, nil
}

// buildCounters maps the classic flag vocabulary onto Specs: the S-bitmap
// is dimensioned from (n, eps), every budget-based competitor from the
// shared budget, and mr/vb additionally from n — the paper's like-for-like
// accounting.
func buildCounters(algo string, n, eps float64, budget int, seed uint64) ([]namedCounter, error) {
	mk := func(name string) (namedCounter, error) {
		kind, err := sbitmap.ParseKind(name)
		if err != nil {
			return namedCounter{}, fmt.Errorf("unknown algorithm %q", name)
		}
		spec := sbitmap.Spec{Kind: kind, Seed: seed}
		switch kind {
		case sbitmap.KindSBitmap:
			spec.N, spec.Eps = n, eps
		case sbitmap.KindMRBitmap, sbitmap.KindVirtualBitmap:
			spec.N, spec.MemoryBits = n, budget
		case sbitmap.KindExact:
			// no dimensioning
		default:
			spec.MemoryBits = budget
		}
		c, err := spec.New()
		if err != nil {
			return namedCounter{}, err
		}
		return namedCounter{name, c}, nil
	}
	if algo == "all" {
		var out []namedCounter
		for _, name := range []string{"sbitmap", "hll", "loglog", "mr", "lc", "fm", "adaptive", "exact"} {
			c, err := mk(name)
			if err != nil {
				return nil, err
			}
			out = append(out, c)
		}
		return out, nil
	}
	c, err := mk(algo)
	if err != nil {
		return nil, err
	}
	return []namedCounter{c}, nil
}
